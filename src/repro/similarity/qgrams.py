"""q-gram decomposition and Jaccard similarity.

q-grams appear in the paper's predicate set Υ (Section 2.2); Jaccard
similarity over token or q-gram sets is the classic fast similarity used by
blocking and similarity joins (Xiao et al. 2011, cited by the paper).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import FrozenSet, Sequence, Set, Tuple

#: Slack for the float arithmetic in the Jaccard filter bounds below.
#: Bounds are only ever *relaxed* by it (windows widen, thresholds drop),
#: so rounding can never over-prune; the final predicate call restores
#: exactness.
FILTER_EPS = 1e-9


def qgrams(s: str, q: int = 2, pad: bool = True, pad_char: str = "#") -> Counter:
    """The multiset of q-grams of *s* as a :class:`collections.Counter`.

    Parameters
    ----------
    s:
        Input string.
    q:
        Gram length; must be positive.
    pad:
        When true the string is padded with ``q - 1`` copies of *pad_char*
        on both sides, so boundary characters contribute q grams each —
        the standard convention for q-gram string joins.
    pad_char:
        Padding character (should not occur in the data).
    """
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    if pad and q > 1:
        s = pad_char * (q - 1) + s + pad_char * (q - 1)
    if len(s) < q:
        return Counter([s] if s else [])
    return Counter(s[i : i + q] for i in range(len(s) - q + 1))


def qgram_set(s: str, q: int = 2, pad: bool = True) -> FrozenSet[str]:
    """The *set* of q-grams of *s* (multiplicities dropped)."""
    return frozenset(qgrams(s, q=q, pad=pad))


def jaccard_similarity(a: Set, b: Set) -> float:
    """Jaccard similarity ``|a ∩ b| / |a ∪ b|`` of two sets.

    Two empty sets are fully similar (1.0) by convention.
    """
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def qgram_similarity(a: str, b: str, q: int = 2) -> float:
    """Jaccard similarity of the q-gram sets of *a* and *b*.

    Examples
    --------
    >>> qgram_similarity("abc", "abc")
    1.0
    >>> qgram_similarity("abc", "xyz")
    0.0
    """
    return jaccard_similarity(set(qgram_set(a, q)), set(qgram_set(b, q)))


def token_jaccard(a: str, b: str) -> float:
    """Jaccard similarity of whitespace token sets (fuzzy token matching).

    A lightweight stand-in for the fuzzy-token similarity of Wang et al.
    2011 cited in the paper's related work.
    """
    return jaccard_similarity(set(a.split()), set(b.split()))


def overlap_coefficient(a: Set, b: Set) -> float:
    """Overlap coefficient ``|a ∩ b| / min(|a|, |b|)``; 1.0 for two empty sets."""
    if not a or not b:
        return 1.0 if not a and not b else 0.0
    return len(a & b) / min(len(a), len(b))


# ----------------------------------------------------------------------
# Filter-bound helpers for the set-based similarity join
# (``matching/simjoin.py``).  All bounds are *necessary* conditions —
# upper bounds on what a true match can violate — so pruning with them is
# lossless; survivors are re-verified with the exact predicate.
# ----------------------------------------------------------------------


def qgram_multiset_tokens(s: str, q: int = 2, pad: bool = True) -> Tuple[Tuple[str, int], ...]:
    """The padded q-gram *multiset* of *s* encoded as a token set.

    Each gram occurrence becomes a distinct ``(gram, occurrence#)`` token,
    the standard trick that lets multiset overlap be computed with plain
    set machinery (an inverted index keyed by tokens).  With padding and
    ``q >= 2`` the token count is exactly ``len(s) + q - 1``.
    """
    counts = qgrams(s, q=q, pad=pad)
    return tuple((gram, occ) for gram, n in counts.items() for occ in range(n))


def qgram_profile_size(length: int, q: int = 2) -> int:
    """Padded multiset q-gram count of any string of *length* chars (``q >= 2``)."""
    return length + q - 1


def edit_overlap_bound(len_a: int, len_b: int, k: int, q: int = 2) -> int:
    """Minimum shared (multiset) q-grams of two strings within edit distance *k*.

    One edit destroys at most *q* grams, so strings with
    ``edit_distance <= k`` share at least ``max(|G_a|, |G_b|) - k*q``
    grams (Gravano et al. 2001).  A result ``<= 0`` means the bound
    cannot prune for this length pair.
    """
    return qgram_profile_size(max(len_a, len_b), q) - k * q


def edit_prefix_length(k: int, q: int = 2) -> int:
    """Prefix-filter length for the edit-*k* bound: ``k*q + 1`` tokens.

    If two profiles share ``>= |G| - k*q`` tokens, they must share one
    within the first ``k*q + 1`` tokens of any fixed global token order.
    """
    return k * q + 1


def jaccard_size_window(size: int, threshold: float) -> Tuple[int, int]:
    """Admissible partner set sizes ``[lo, hi]`` for Jaccard >= *threshold*.

    ``J(a, b) >= t`` forces ``t*|a| <= |b| <= |a|/t``.  *threshold* must be
    positive (a zero threshold admits everything and cannot filter).
    """
    lo = math.ceil(threshold * size - FILTER_EPS)
    hi = math.floor(size / threshold + FILTER_EPS)
    return max(lo, 0), hi


def jaccard_overlap_bound(size_a: int, size_b: int, threshold: float) -> int:
    """Minimum overlap of two sets with Jaccard >= *threshold*:
    ``ceil(t/(1+t) * (|a| + |b|))``."""
    need = threshold * (size_a + size_b) / (1.0 + threshold)
    return math.ceil(need - FILTER_EPS)


def jaccard_prefix_length(size: int, threshold: float) -> int:
    """Prefix-filter length for a set of *size* tokens under Jaccard-*t*.

    The smallest possible required overlap for this set (against its
    smallest admissible partner) is ``ceil(t * size)``; skipping more than
    ``size - ceil(t*size)`` tokens could skip every shared one.
    """
    return size - math.ceil(threshold * size - FILTER_EPS) + 1
