"""q-gram decomposition and Jaccard similarity.

q-grams appear in the paper's predicate set Υ (Section 2.2); Jaccard
similarity over token or q-gram sets is the classic fast similarity used by
blocking and similarity joins (Xiao et al. 2011, cited by the paper).
"""

from __future__ import annotations

from collections import Counter
from typing import FrozenSet, Sequence, Set


def qgrams(s: str, q: int = 2, pad: bool = True, pad_char: str = "#") -> Counter:
    """The multiset of q-grams of *s* as a :class:`collections.Counter`.

    Parameters
    ----------
    s:
        Input string.
    q:
        Gram length; must be positive.
    pad:
        When true the string is padded with ``q - 1`` copies of *pad_char*
        on both sides, so boundary characters contribute q grams each —
        the standard convention for q-gram string joins.
    pad_char:
        Padding character (should not occur in the data).
    """
    if q <= 0:
        raise ValueError(f"q must be positive, got {q}")
    if pad and q > 1:
        s = pad_char * (q - 1) + s + pad_char * (q - 1)
    if len(s) < q:
        return Counter([s] if s else [])
    return Counter(s[i : i + q] for i in range(len(s) - q + 1))


def qgram_set(s: str, q: int = 2, pad: bool = True) -> FrozenSet[str]:
    """The *set* of q-grams of *s* (multiplicities dropped)."""
    return frozenset(qgrams(s, q=q, pad=pad))


def jaccard_similarity(a: Set, b: Set) -> float:
    """Jaccard similarity ``|a ∩ b| / |a ∪ b|`` of two sets.

    Two empty sets are fully similar (1.0) by convention.
    """
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def qgram_similarity(a: str, b: str, q: int = 2) -> float:
    """Jaccard similarity of the q-gram sets of *a* and *b*.

    Examples
    --------
    >>> qgram_similarity("abc", "abc")
    1.0
    >>> qgram_similarity("abc", "xyz")
    0.0
    """
    return jaccard_similarity(set(qgram_set(a, q)), set(qgram_set(b, q)))


def token_jaccard(a: str, b: str) -> float:
    """Jaccard similarity of whitespace token sets (fuzzy token matching).

    A lightweight stand-in for the fuzzy-token similarity of Wang et al.
    2011 cited in the paper's related work.
    """
    return jaccard_similarity(set(a.split()), set(b.split()))


def overlap_coefficient(a: Set, b: Set) -> float:
    """Overlap coefficient ``|a ∩ b| / min(|a|, |b|)``; 1.0 for two empty sets."""
    if not a or not b:
        return 1.0 if not a and not b else 0.0
    return len(a & b) / min(len(a), len(b))
