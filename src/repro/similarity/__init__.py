"""Similarity metrics and predicates (the set Υ of the paper, Section 2.2).

Provides edit distance (with banded early exit), Hamming, Jaro and
Jaro–Winkler, q-gram/Jaccard, longest-common-substring utilities (the
blocking bound of Section 5.2), and the :class:`SimilarityPredicate`
abstraction that matching dependencies are defined over.
"""

from repro.similarity.hamming import hamming_distance, hamming_similarity, within_hamming_distance
from repro.similarity.jaro import jaro_similarity, jaro_winkler_similarity
from repro.similarity.lcs import (
    common_prefix_length,
    lcs_blocking_bound,
    lcs_similarity,
    longest_common_substring,
    longest_common_substring_length,
    passes_lcs_filter,
    split_bound_pieces,
)
from repro.similarity.levenshtein import edit_distance, edit_similarity, within_edit_distance
from repro.similarity.predicates import (
    DEFAULT_REGISTRY,
    EQ,
    EQ_NORMALIZED,
    JoinFilterSpec,
    PredicateRegistry,
    SimilarityPredicate,
    edit_sim_at_least,
    edit_within,
    jaro_winkler_at_least,
    join_filter_for,
    qgram_jaccard_at_least,
)
from repro.similarity.qgrams import (
    jaccard_similarity,
    overlap_coefficient,
    qgram_multiset_tokens,
    qgram_set,
    qgram_similarity,
    qgrams,
    token_jaccard,
)

__all__ = [
    "DEFAULT_REGISTRY",
    "EQ",
    "EQ_NORMALIZED",
    "JoinFilterSpec",
    "PredicateRegistry",
    "SimilarityPredicate",
    "common_prefix_length",
    "edit_distance",
    "edit_sim_at_least",
    "edit_similarity",
    "edit_within",
    "hamming_distance",
    "hamming_similarity",
    "jaccard_similarity",
    "jaro_similarity",
    "jaro_winkler_at_least",
    "jaro_winkler_similarity",
    "join_filter_for",
    "lcs_blocking_bound",
    "lcs_similarity",
    "longest_common_substring",
    "longest_common_substring_length",
    "overlap_coefficient",
    "passes_lcs_filter",
    "qgram_jaccard_at_least",
    "qgram_multiset_tokens",
    "qgram_set",
    "qgram_similarity",
    "qgrams",
    "split_bound_pieces",
    "token_jaccard",
    "within_edit_distance",
    "within_hamming_distance",
]
