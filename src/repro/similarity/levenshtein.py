"""Edit (Levenshtein) distance and derived similarity.

The paper's experiments "used edit distance for similarity test, defined as
the minimum number of single-character insertions, deletions and
substitutions needed to convert a value from v to v′" (Section 8).  The
unbounded distance uses the standard two-row dynamic program; the
thresholded test ``edit_distance(a, b, max_distance=k)`` — which is what
MD premise verification actually calls on every match-cache miss, the
hottest similarity path of the pipeline — runs the O(k·min(|a|,|b|))
*diagonal band* DP (Ukkonen's cutoff): a cell ``(i, j)`` can lie on a
path of cost ≤ k only when

    |j - i| + |(len(b) - len(a)) - (j - i)|  ≤  k,

so per row only a band of ≤ k+1 cells is computed, with an early exit as
soon as the whole band exceeds the bound.
"""

from __future__ import annotations

from typing import Optional


def _banded_distance(a: str, b: str, k: int) -> int:
    """Thresholded distance over the k-band; ``k + 1`` when it exceeds *k*.

    Requires ``len(a) <= len(b)`` and ``len(b) - len(a) <= k``.
    """
    la, lb = len(a), len(b)
    gap = lb - la
    # Offsets of the band around the diagonal j - i ∈ [-lo, gap + hi]:
    # a path spends |j - i| getting to the cell and |gap - (j - i)|
    # getting home, so 2·lo + gap ≤ k bounds the halves.
    half = (k - gap) // 2
    lo_diag = -half                 # min j - i
    hi_diag = gap + (k - gap) - half  # max j - i (uses the leftover parity)
    inf = k + 1

    # previous[i - row_lo] = d(i, j-1) for i in the previous row's window.
    prev_lo = 0
    previous = [min(i, inf) for i in range(0, min(la, -lo_diag if lo_diag < 0 else 0) + 1)]
    # Row j = 0: window is i ∈ [0, min(la, -lo_diag)] with d(i, 0) = i.
    for j in range(1, lb + 1):
        row_lo = max(0, j - hi_diag)
        row_hi = min(la, j - lo_diag)
        if row_lo > row_hi:
            return inf
        current = []
        bj = b[j - 1]
        best = inf
        for i in range(row_lo, row_hi + 1):
            if i == 0:
                val = j if j <= k else inf
            else:
                # previous row covers [prev_lo, prev_lo + len(previous) - 1]
                p_idx = i - prev_lo
                sub = previous[p_idx - 1] + (0 if a[i - 1] == bj else 1) \
                    if 0 < p_idx <= len(previous) else inf
                dele = previous[p_idx] + 1 if 0 <= p_idx < len(previous) else inf
                ins = current[-1] + 1 if i > row_lo else inf
                val = sub if sub < dele else dele
                if ins < val:
                    val = ins
                if val > k:
                    val = inf
            current.append(val)
            if val < best:
                best = val
        if best > k:
            return inf
        previous, prev_lo = current, row_lo
    if la < prev_lo or la - prev_lo >= len(previous):
        return inf
    result = previous[la - prev_lo]
    return result if result <= k else inf


def edit_distance(a: str, b: str, max_distance: Optional[int] = None) -> int:
    """Levenshtein distance between *a* and *b*.

    Parameters
    ----------
    a, b:
        The two strings.
    max_distance:
        When given, the computation may stop early and return
        ``max_distance + 1`` as soon as the true distance provably exceeds
        the bound.  This selects the O(max_distance · min(|a|,|b|))
        diagonal-band DP, the standard trick for thresholded joins.

    Examples
    --------
    >>> edit_distance("Bob", "Robert")
    4
    >>> edit_distance("Mark", "Marc")
    1
    >>> edit_distance("abc", "abc")
    0
    >>> edit_distance("kitten", "sitting", max_distance=1)
    2
    """
    if a == b:
        return 0
    # Strip the common prefix and suffix: edits there are never needed,
    # and near-duplicate strings (the common case in matching) shrink to
    # a tiny core.
    lo = 0
    hi_a, hi_b = len(a), len(b)
    while lo < hi_a and lo < hi_b and a[lo] == b[lo]:
        lo += 1
    while hi_a > lo and hi_b > lo and a[hi_a - 1] == b[hi_b - 1]:
        hi_a -= 1
        hi_b -= 1
    a = a[lo:hi_a]
    b = b[lo:hi_b]
    # Ensure a is the shorter string: the DP keeps rows of len(a) + 1.
    if len(a) > len(b):
        a, b = b, a
    la, lb = len(a), len(b)
    if max_distance is not None:
        if max_distance < 0:
            return max_distance + 1 if lb > 0 else 0
        if lb - la > max_distance:
            return max_distance + 1
        return _banded_distance(a, b, max_distance)
    if la == 0:
        return lb
    previous = list(range(la + 1))
    current = [0] * (la + 1)
    for j in range(1, lb + 1):
        current[0] = j
        bj = b[j - 1]
        for i in range(1, la + 1):
            cost = 0 if a[i - 1] == bj else 1
            current[i] = min(
                previous[i] + 1,      # deletion
                current[i - 1] + 1,   # insertion
                previous[i - 1] + cost,  # substitution / match
            )
        previous, current = current, previous
    return previous[la]


def within_edit_distance(a: str, b: str, k: int) -> bool:
    """Whether ``edit_distance(a, b) <= k`` (banded, with early exit)."""
    if k < 0:
        return False
    return edit_distance(a, b, max_distance=k) <= k


def edit_similarity(a: str, b: str) -> float:
    """Normalized edit similarity in ``[0, 1]``.

    Defined as ``1 - dis(a, b) / max(|a|, |b|)`` — the same normalization
    the paper's cost model uses ("to ensure that longer strings with
    1-character difference are closer than shorter strings with 1-character
    difference", Section 3.1).  Two empty strings are fully similar.
    """
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - edit_distance(a, b) / longest
