"""Edit (Levenshtein) distance and derived similarity.

The paper's experiments "used edit distance for similarity test, defined as
the minimum number of single-character insertions, deletions and
substitutions needed to convert a value from v to v′" (Section 8).  The
implementation below is the standard two-row dynamic program with an
optional early-exit band for thresholded tests, which is what the MD
matcher actually calls in the hot path.
"""

from __future__ import annotations

from typing import Optional


def edit_distance(a: str, b: str, max_distance: Optional[int] = None) -> int:
    """Levenshtein distance between *a* and *b*.

    Parameters
    ----------
    a, b:
        The two strings.
    max_distance:
        When given, the computation may stop early and return
        ``max_distance + 1`` as soon as the true distance provably exceeds
        the bound.  This turns the O(|a||b|) DP into an O(max_distance ·
        min(|a|,|b|)) banded DP, the standard trick for thresholded joins.

    Examples
    --------
    >>> edit_distance("Bob", "Robert")
    4
    >>> edit_distance("Mark", "Marc")
    1
    >>> edit_distance("abc", "abc")
    0
    """
    if a == b:
        return 0
    # Strip the common prefix and suffix: edits there are never needed,
    # and near-duplicate strings (the common case in matching) shrink to
    # a tiny core.
    lo = 0
    hi_a, hi_b = len(a), len(b)
    while lo < hi_a and lo < hi_b and a[lo] == b[lo]:
        lo += 1
    while hi_a > lo and hi_b > lo and a[hi_a - 1] == b[hi_b - 1]:
        hi_a -= 1
        hi_b -= 1
    a = a[lo:hi_a]
    b = b[lo:hi_b]
    # Ensure a is the shorter string: the DP keeps rows of len(a) + 1.
    if len(a) > len(b):
        a, b = b, a
    la, lb = len(a), len(b)
    if max_distance is not None and lb - la > max_distance:
        return max_distance + 1
    if la == 0:
        return lb
    previous = list(range(la + 1))
    current = [0] * (la + 1)
    for j in range(1, lb + 1):
        current[0] = j
        best_in_row = current[0]
        bj = b[j - 1]
        for i in range(1, la + 1):
            cost = 0 if a[i - 1] == bj else 1
            current[i] = min(
                previous[i] + 1,      # deletion
                current[i - 1] + 1,   # insertion
                previous[i - 1] + cost,  # substitution / match
            )
            if current[i] < best_in_row:
                best_in_row = current[i]
        if max_distance is not None and best_in_row > max_distance:
            return max_distance + 1
        previous, current = current, previous
    return previous[la]


def within_edit_distance(a: str, b: str, k: int) -> bool:
    """Whether ``edit_distance(a, b) <= k`` (with early exit)."""
    if k < 0:
        return False
    return edit_distance(a, b, max_distance=k) <= k


def edit_similarity(a: str, b: str) -> float:
    """Normalized edit similarity in ``[0, 1]``.

    Defined as ``1 - dis(a, b) / max(|a|, |b|)`` — the same normalization
    the paper's cost model uses ("to ensure that longer strings with
    1-character difference are closer than shorter strings with 1-character
    difference", Section 3.1).  Two empty strings are fully similar.
    """
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - edit_distance(a, b) / longest
