"""Longest common substring (LCS, contiguous) utilities.

Section 5.2 of the paper blocks candidate matches by the length of the
longest common *substring*: "two strings u and v have a Hamming/Edit
distance within K only if the length of their LCS is at least
max(|u|,|v|)/(K+1)".  (A string that differs in at most K places is cut
into at most K+1 untouched contiguous pieces, the longest of which has at
least that length.)  The generalized suffix tree in
:mod:`repro.indexing.suffix_tree` indexes master strings for exactly this
bound; this module provides the reference quadratic computation used in
tests and small inputs.
"""

from __future__ import annotations

from typing import Tuple


def longest_common_substring_length(a: str, b: str) -> int:
    """Length of the longest *contiguous* common substring of *a* and *b*.

    Standard O(|a|·|b|) dynamic program with two rows.

    Examples
    --------
    >>> longest_common_substring_length("robert", "bob")
    2
    >>> longest_common_substring_length("abcdef", "zabcy")
    3
    >>> longest_common_substring_length("", "abc")
    0
    """
    if not a or not b:
        return 0
    if len(a) > len(b):
        a, b = b, a
    best = 0
    previous = [0] * (len(a) + 1)
    for ch_b in b:
        current = [0] * (len(a) + 1)
        for i, ch_a in enumerate(a, start=1):
            if ch_a == ch_b:
                current[i] = previous[i - 1] + 1
                if current[i] > best:
                    best = current[i]
        previous = current
    return best


def longest_common_substring(a: str, b: str) -> str:
    """One longest contiguous common substring (leftmost in *b* on ties)."""
    if not a or not b:
        return ""
    best_len = 0
    best_end_b = 0
    previous = [0] * (len(a) + 1)
    for j, ch_b in enumerate(b, start=1):
        current = [0] * (len(a) + 1)
        for i, ch_a in enumerate(a, start=1):
            if ch_a == ch_b:
                current[i] = previous[i - 1] + 1
                if current[i] > best_len:
                    best_len = current[i]
                    best_end_b = j
        previous = current
    return b[best_end_b - best_len : best_end_b]


def lcs_blocking_bound(length_a: int, length_b: int, k: int) -> float:
    """The minimum LCS length compatible with distance ≤ *k* (Section 5.2).

    The paper states the bound as ``max(|u|,|v|)/(K+1)``; the *sound*
    pigeonhole bound is ``(max(|u|,|v|) − K)/(K+1)``: at most ``K`` edits
    touch at most ``K`` characters of the longer string, splitting it into
    at most ``K+1`` maximal unedited runs whose total length is at least
    ``max − K`` — the longest run (a common substring) therefore has at
    least that length.  (The paper's looser form wrongly prunes e.g.
    ``u = "", v = "a", K = 1``.)  Candidate pairs whose LCS is shorter can
    be pruned without computing the (more expensive) edit distance.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    return max(0, max(length_a, length_b) - k) / (k + 1)


def passes_lcs_filter(a: str, b: str, k: int) -> bool:
    """Whether the pair (*a*, *b*) survives the LCS blocking filter for *k*.

    This is a *necessary* condition for ``edit_distance(a,b) <= k``; the
    property-based tests verify no true match is ever filtered out.
    """
    bound = lcs_blocking_bound(len(a), len(b), k)
    return longest_common_substring_length(a, b) >= bound


def lcs_similarity(a: str, b: str) -> float:
    """LCS length normalized by the longer string; in ``[0, 1]``."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    if longest == 0:
        return 1.0
    return longest_common_substring_length(a, b) / longest


def common_prefix_length(a: str, b: str) -> int:
    """Length of the longest common prefix (used by suffix-tree tests)."""
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n


def split_bound_pieces(s: str, k: int) -> Tuple[str, ...]:
    """Cut *s* into ``k + 1`` near-equal contiguous pieces.

    Utility backing the intuition of the blocking bound: at most *k* edits
    leave at least one of these pieces untouched.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    parts = k + 1
    base = len(s) // parts
    remainder = len(s) % parts
    pieces = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < remainder else 0)
        pieces.append(s[start : start + size])
        start += size
    return tuple(pieces)
