"""Hamming distance for equal-length strings.

Section 5.2 of the paper discusses suffix-tree indices under
"Hamming/Edit distance"; the blocking bound (LCS length at least
``max(|u|,|v|)/(K+1)``) holds for both metrics, so the blocking index
accepts either.
"""

from __future__ import annotations

from repro.exceptions import DataError


def hamming_distance(a: str, b: str) -> int:
    """Number of positions at which *a* and *b* differ.

    Raises
    ------
    DataError
        If the strings have different lengths (Hamming distance is only
        defined for equal-length strings).

    Examples
    --------
    >>> hamming_distance("karolin", "kathrin")
    3
    """
    if len(a) != len(b):
        raise DataError(
            f"hamming distance requires equal lengths, got {len(a)} and {len(b)}"
        )
    return sum(1 for x, y in zip(a, b) if x != y)


def hamming_similarity(a: str, b: str) -> float:
    """Normalized Hamming similarity ``1 - d/|a|`` in ``[0, 1]``.

    Empty strings are fully similar.
    """
    if not a and not b:
        return 1.0
    return 1.0 - hamming_distance(a, b) / len(a)


def within_hamming_distance(a: str, b: str, k: int) -> bool:
    """Whether the Hamming distance is at most *k*.

    Unlike :func:`hamming_distance` this treats different lengths as
    "not within" instead of raising, which is the convenient semantics
    for use as a similarity predicate.
    """
    if len(a) != len(b):
        return False
    if k < 0:
        return False
    budget = k
    for x, y in zip(a, b):
        if x != y:
            budget -= 1
            if budget < 0:
                return False
    return True
