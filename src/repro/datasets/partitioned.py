"""The PART testbed: a block-partitioned workload that shards cleanly.

The HOSP/DBLP/TPCH substitutes exercise the paper's dependency
structures, but their rule graphs chain every tuple into one coupling
component (a provider's rows share measures, measures share states, …),
so the :class:`~repro.pipeline.sharding.ShardPlanner` correctly
degenerates them to a single shard.  Real partition-parallel deployments
look different: multi-tenant and regional data carry a natural blocking
attribute that *every* rule respects.  PART models exactly that — every
variable CFD's LHS and every MD's equality-blocking key includes the
``block`` attribute, so the coarsest common refinement of the rule keys
is the block partition and an ``n``-worker session gets ``n`` real
shards.

Determinism contract (tested in ``tests/datasets/test_generators.py``):

* generation is a pure function of ``(size, n_blocks, rates, seed)`` —
  every random choice draws from a :func:`~repro.datasets.generator.derive_rng`
  sub-rng keyed by block, never from shared or module-level state;
* block ``b`` owns the fixed tid range ``[offset(b), offset(b+1))``, so
  ``generate_partitioned(..., block_ids={b})`` returns byte-identical
  tuples (values, confidences, injected errors, master rows, ground
  truth) to the restriction of the full dataset — what lets sharded
  workers and an unsharded baseline build identical testbeds without
  shipping 100K rows around.

The default size is the ROADMAP's 100K-row scale-step target; tests and
CI use small instances of the same generator.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.constraints.cfd import CFD
from repro.constraints.md import MD
from repro.datasets.generator import (
    DirtyDataset,
    NamePool,
    assign_confidences,
    derive_rng,
    inject_noise,
)
from repro.exceptions import DataError
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuples import CTuple
from repro.similarity.predicates import edit_within

#: The 9 attributes of the PART schema.  ``block`` is the tenant/region
#: key every rule blocks on; ``site`` entities determine name/city/zip;
#: the global ``grp`` pool determines ``cat``.
PART_ATTRS = (
    "block",
    "site",
    "name",
    "city",
    "zip",
    "grp",
    "cat",
    "score",
    "src",
)

PART_SCHEMA = Schema("part", PART_ATTRS)

_CATS = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta")


def _grp_pool(seed: int) -> Dict[str, str]:
    """The global ``grp → cat`` entity map (block-independent, so rules
    and per-block generation agree without sharing rng state)."""
    rng = derive_rng(seed, "grp-pool")
    out: Dict[str, str] = {}
    for index in range(12):
        out[f"G{index:02d}"] = _CATS[rng.randrange(len(_CATS))]
    return out


def part_rules(seed: int) -> Tuple[List[CFD], List[MD]]:
    """The PART rule sets: 5 variable CFDs, 3 constant CFDs, 2 MDs.

    Every variable LHS and every MD equality premise includes ``block``,
    which is what makes the workload shardable by construction.
    """
    s = PART_SCHEMA
    grp_cat = _grp_pool(seed)
    g0, g1 = "G00", "G01"
    cfds: List[CFD] = [
        CFD(s, ["block", "site"], ["name"], name="p_site_name"),
        CFD(s, ["block", "site"], ["city"], name="p_site_city"),
        CFD(s, ["block", "site"], ["zip"], name="p_site_zip"),
        CFD(s, ["block", "zip"], ["city"], name="p_zip_city"),
        CFD(s, ["block", "grp"], ["cat"], name="p_grp_cat"),
        CFD(s, ["grp"], ["cat"], {"grp": g0, "cat": grp_cat[g0]}, name="p_c_g0"),
        CFD(s, ["grp"], ["cat"], {"grp": g1, "cat": grp_cat[g1]}, name="p_c_g1"),
        CFD(s, [], ["src"], rhs_pattern={"src": "GEN"}, name="p_c_src"),
    ]
    mds: List[MD] = [
        MD(
            s,
            s,
            [("block", "block"), ("site", "site")],
            [("name", "name"), ("zip", "zip")],
            name="p_md_site",
        ),
        MD(
            s,
            s,
            [
                ("block", "block"),
                ("city", "city"),
                ("name", "name", edit_within(2)),
            ],
            [("site", "site")],
            name="p_md_name",
        ),
    ]
    return cfds, mds


def _block_sizes(size: int, n_blocks: int) -> List[int]:
    base, extra = divmod(size, n_blocks)
    return [base + (1 if index < extra else 0) for index in range(n_blocks)]


def _gen_block(
    block_index: int,
    rows_in_block: int,
    duplicate_rate: float,
    seed: int,
    grp_cat: Dict[str, str],
) -> Tuple[List[dict], List[dict], List[Tuple[int, int]]]:
    """Clean rows, master rows and within-block match pairs (by local
    row index) of one block — a pure function of ``(seed, block_index)``.
    """
    rng = derive_rng(seed, "block", block_index)
    pool = NamePool(rng)
    block = f"B{block_index:04d}"
    grps = sorted(grp_cat)

    site_count = max(2, rows_in_block // 3)
    sites = []
    used_zips: Set[str] = set()
    for _ in range(site_count):
        while True:  # unique zips keep block, zip → city consistent on clean data
            zip_code = pool.digits(5)
            if zip_code not in used_zips:
                used_zips.add(zip_code)
                break
        sites.append(
            {
                "block": block,
                "site": pool.sparse_code("S", 5),
                "name": f"{pool.proper_name(2)} {pool.proper_name(2)}",
                "city": pool.proper_name(2) + " City",
                "zip": zip_code,
            }
        )
    master_site_count = max(1, round(site_count * duplicate_rate))
    master_sites = sites[:master_site_count]

    def row(site: dict) -> dict:
        grp = rng.choice(grps)
        return {
            **site,
            "grp": grp,
            "cat": grp_cat[grp],
            "score": str(rng.randrange(5, 100)),
            "src": "GEN",
        }

    master_rows = [row(site) for site in master_sites]
    clean_rows: List[dict] = []
    matches: List[Tuple[int, int]] = []  # (clean local idx, master local idx)
    for index in range(rows_in_block):
        if master_sites and rng.random() < duplicate_rate:
            pick = rng.randrange(len(master_sites))
            matches.append((index, pick))
            clean_rows.append(row(master_sites[pick]))
        else:
            clean_rows.append(row(rng.choice(sites)))
    return clean_rows, master_rows, matches


def generate_partitioned(
    size: int = 100_000,
    n_blocks: int = 64,
    noise_rate: float = 0.04,
    duplicate_rate: float = 0.4,
    asserted_rate: float = 0.4,
    seed: int = 11,
    block_ids: Optional[Iterable[int]] = None,
) -> DirtyDataset:
    """Generate a PART benchmark instance (see the module docstring).

    Parameters mirror the paper's knobs; *block_ids* restricts
    generation to a subset of blocks, producing the byte-identical
    restriction of the full dataset (same tids, values, confidences,
    errors and ground truth) — per-shard generation for workers.
    """
    if n_blocks < 1:
        raise DataError(f"n_blocks must be >= 1, got {n_blocks}")
    if size < n_blocks:
        raise DataError(f"size {size} must be >= n_blocks {n_blocks}")
    wanted = set(range(n_blocks)) if block_ids is None else set(block_ids)
    unknown = wanted - set(range(n_blocks))
    if unknown:
        raise DataError(f"unknown block ids {sorted(unknown)}")

    grp_cat = _grp_pool(seed)
    sizes = _block_sizes(size, n_blocks)
    master_counts = [
        max(1, round(max(2, rows // 3) * duplicate_rate)) for rows in sizes
    ]
    offsets = [0]
    master_offsets = [0]
    for rows, masters in zip(sizes, master_counts):
        offsets.append(offsets[-1] + rows)
        master_offsets.append(master_offsets[-1] + masters)

    master = Relation(PART_SCHEMA)
    clean = Relation(PART_SCHEMA)
    dirty = Relation(PART_SCHEMA)
    true_matches: Set[Tuple[int, int]] = set()
    errors: Set[Tuple[int, str]] = set()

    for block_index in sorted(wanted):
        clean_rows, master_rows, matches = _gen_block(
            block_index, sizes[block_index], duplicate_rate, seed, grp_cat
        )
        for local, row in enumerate(master_rows):
            master.add(
                CTuple(PART_SCHEMA, row, tid=master_offsets[block_index] + local)
            )
        block_clean = Relation(PART_SCHEMA)
        for local, row in enumerate(clean_rows):
            block_clean.add(
                CTuple(PART_SCHEMA, row, tid=offsets[block_index] + local)
            )
        for clean_local, master_local in matches:
            true_matches.add(
                (
                    offsets[block_index] + clean_local,
                    master_offsets[block_index] + master_local,
                )
            )
        # Per-block noise and confidences: each draws from its own
        # derived rng, so a block's dirt never depends on which other
        # blocks were generated alongside it.
        block_dirty, block_errors = inject_noise(
            block_clean,
            noise_rate,
            derive_rng(seed, "noise", block_index),
            typo_only_attrs=("site", "zip", "grp"),
        )
        assign_confidences(
            block_dirty,
            block_clean,
            asserted_rate,
            derive_rng(seed, "conf", block_index),
        )
        errors.update(block_errors)
        for t in block_clean:
            clean.add(t)
        for t in block_dirty:
            dirty.add(t)

    cfds, mds = part_rules(seed)
    return DirtyDataset(
        name="partitioned",
        schema=PART_SCHEMA,
        master=master,
        clean=clean,
        dirty=dirty,
        cfds=cfds,
        mds=mds,
        true_matches=true_matches,
        errors=errors,
        params={
            "size": size,
            "n_blocks": n_blocks,
            "noise_rate": noise_rate,
            "duplicate_rate": duplicate_rate,
            "asserted_rate": asserted_rate,
            "seed": seed,
            "block_ids": sorted(wanted) if block_ids is not None else None,
        },
    )


def replan_batch(
    base: Relation,
    rng: random.Random,
    inserts: int = 1,
    edits: int = 4,
    blocks: int = 1,
) -> List["Changeset"]:
    """One re-plan-heavy micro-batch against the PART testbed.

    Returns a list of changesets (the shape ``apply_many`` consumes):
    *inserts* near-duplicate rows of existing tuples — each joins the
    donor's ``(block, site)`` group, growing exactly that block's
    coupling component and forcing the re-plan path — plus *edits*
    catalog-style corrections (``cat``/``score``), all confined to
    *blocks* distinct blocks so the touched-component count (and hence
    ``stats["shards_recleaned"]``) stays proportional to the delta, not
    to the shard count.  Draws rows from the live *base* (typically
    ``session.base``), so batches stay valid as the relation evolves.
    """
    from repro.pipeline.changeset import Changeset

    by_block: Dict[str, List[int]] = {}
    for t in base:
        by_block.setdefault(t["block"], []).append(t.tid)
    if not by_block:
        raise DataError("replan_batch needs a non-empty base relation")
    block_names = sorted(by_block)
    chosen = [
        block_names[rng.randrange(len(block_names))]
        for _ in range(max(1, blocks))
    ]

    def pick_tid() -> int:
        tids = by_block[chosen[rng.randrange(len(chosen))]]
        return tids[rng.randrange(len(tids))]

    insert_changeset = Changeset()
    for _ in range(inserts):
        donor = base.by_tid(pick_tid())
        row = donor.as_dict()
        row["score"] = str(rng.randrange(5, 100))
        insert_changeset.insert(row)
    edit_changeset = Changeset()
    for _ in range(edits):
        donor = base.by_tid(pick_tid())
        attr = ("cat", "score")[rng.randrange(2)]
        edit_changeset.edit(pick_tid(), attr, donor[attr])
    out = [insert_changeset]
    if edits:
        out.append(edit_changeset)
    return out
