"""Shared machinery for synthetic dirty-dataset generation (Section 8).

The paper's evaluation produces dirty datasets from clean sources under
four parameters:

* ``|D|`` — data size;
* ``noi%`` — noise rate: fraction of attribute cells made erroneous;
* ``dup%`` — duplicate rate: fraction of tuples with a master match;
* ``asr%`` — asserted rate: per attribute, the fraction of tuples whose
  cell gets confidence 1 (all other cells get confidence 0).

The real HOSP/DBLP sources are not available offline, so
:mod:`repro.datasets.hosp`, :mod:`repro.datasets.dblp` and
:mod:`repro.datasets.tpch` generate data with the same dependency
structure (see DESIGN.md, "Substitutions").  This module provides the
common steps: noise injection, confidence assignment and the
:class:`DirtyDataset` container carrying ground truth for evaluation.

Confidence protocol: the paper treats user confidence as correct
("we assume the correctness of ... confidence levels", Section 5.1), so
asserted cells are sampled from the *correct* cells only.
"""

from __future__ import annotations

import hashlib
import random
import string
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.constraints.cfd import CFD
from repro.constraints.md import MD
from repro.exceptions import DataError
from repro.relational.attribute import is_null
from repro.relational.relation import Relation
from repro.relational.schema import Schema

Cell = Tuple[int, str]


@dataclass
class DirtyDataset:
    """A generated benchmark instance with full ground truth.

    Attributes
    ----------
    name:
        Dataset family (``"hosp"``, ``"dblp"``, ``"tpch"``).
    schema:
        The (shared data/master) schema.
    master:
        Master data ``Dm`` — clean, consistent with the rules.
    clean:
        The ground-truth version of the dirty relation (same tids).
    dirty:
        The relation ``D`` handed to cleaning algorithms.
    cfds, mds:
        The designed rule sets Σ and Γ.
    true_matches:
        Ground-truth ``(tid, master_tid)`` identifications — every pair
        referring to the same real-world entity.
    errors:
        The cells where ``dirty`` differs from ``clean``.
    params:
        The generation parameters, for reporting.
    """

    name: str
    schema: Schema
    master: Relation
    clean: Relation
    dirty: Relation
    cfds: List[CFD]
    mds: List[MD]
    true_matches: Set[Tuple[int, int]]
    errors: Set[Cell]
    params: Dict[str, Any] = field(default_factory=dict)

    @property
    def noise_cells(self) -> int:
        """Number of erroneous cells actually injected."""
        return len(self.errors)

    def error_rate(self) -> float:
        """Realized fraction of erroneous cells."""
        total = len(self.dirty) * len(self.schema)
        return len(self.errors) / total if total else 0.0


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------
def derive_seed(seed: int, *context: Any) -> int:
    """A stable sub-seed for ``(seed, *context)``.

    Uses SHA-256 over the repr of the context, so the derivation is
    identical across processes and interpreter invocations (unlike
    ``hash()``, which is salted per process).  This is what lets the
    partitioned testbed generate each block independently: a worker
    generating blocks ``{3, 7}`` draws exactly the bytes the full
    generation draws for those blocks.
    """
    payload = repr((seed,) + context).encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")


def derive_rng(seed: int, *context: Any) -> random.Random:
    """A :class:`random.Random` seeded by :func:`derive_seed`.

    Every noise/perturbation choice of a generator should draw from an
    rng threaded explicitly like this — never from module-level
    ``random`` state — so that per-shard and whole-dataset generation
    are byte-identical.
    """
    return random.Random(derive_seed(seed, *context))


# ----------------------------------------------------------------------
# Noise operators
# ----------------------------------------------------------------------
_ALPHABET = string.ascii_lowercase + string.digits


def typo(value: str, rng: random.Random) -> str:
    """One random character edit (insert/delete/substitute) of *value*.

    Guaranteed to return a string different from the input (retries on
    accidental no-ops such as substituting a character with itself).
    """
    if not value:
        return rng.choice(_ALPHABET)
    for _ in range(16):
        op = rng.randrange(3)
        position = rng.randrange(len(value))
        if op == 0:  # substitute
            replacement = rng.choice(_ALPHABET)
            candidate = value[:position] + replacement + value[position + 1 :]
        elif op == 1:  # delete
            candidate = value[:position] + value[position + 1 :]
        else:  # insert
            candidate = value[:position] + rng.choice(_ALPHABET) + value[position:]
        if candidate != value:
            return candidate
    return value + rng.choice(_ALPHABET)


def corrupt_cell(
    value: Any,
    domain_pool: Sequence[Any],
    rng: random.Random,
    typo_share: float = 0.5,
) -> Any:
    """Produce an erroneous version of *value*.

    With probability *typo_share* a typo (small edit, recoverable by
    similarity predicates); otherwise a *semantic* error — a different
    value drawn from the attribute's active domain, the kind of error CFDs
    catch.  Falls back to a typo when the pool has no alternative value.
    """
    if is_null(value):
        return value
    text = str(value)
    if rng.random() >= typo_share:
        alternatives = [v for v in domain_pool if v != value and not is_null(v)]
        if alternatives:
            return rng.choice(alternatives)
    return typo(text, rng)


def inject_noise(
    clean: Relation,
    noise_rate: float,
    rng: random.Random,
    attrs: Optional[Sequence[str]] = None,
    typo_share: float = 0.5,
    typo_only_attrs: Sequence[str] = (),
) -> Tuple[Relation, Set[Cell]]:
    """Corrupt ``noise_rate`` of the cells of *clean* (over *attrs*).

    Returns the dirty clone and the set of corrupted cells.  The noise
    rate is interpreted per the paper: "the ratio of the number of
    erroneous attributes to the total number of attributes in D"; cells
    are sampled without replacement so the realized rate matches exactly
    (up to rounding).

    ``typo_only_attrs`` restricts the corruption of code-like attributes
    (keys, venue/measure codes) to typos: real-world identifiers are
    mistyped, not swapped wholesale for another valid identifier, and a
    swap to a valid code would be an *undetectable* error that no cleaning
    system — the paper's included — could flag.
    """
    if not 0.0 <= noise_rate <= 1.0:
        raise DataError(f"noise rate must be in [0, 1], got {noise_rate}")
    names = list(attrs) if attrs is not None else list(clean.schema.names)
    typo_only = set(typo_only_attrs)
    dirty = clean.clone()
    pools: Dict[str, List[Any]] = {
        attr: sorted(clean.active_domain(attr), key=repr) for attr in names
    }
    cells: List[Cell] = [
        (tid, attr)
        for tid in dirty.tids()
        for attr in names
        if not is_null(dirty.by_tid(tid)[attr])
    ]
    target = round(noise_rate * len(dirty) * len(names))
    target = min(target, len(cells))
    chosen = rng.sample(cells, target) if target else []
    errors: Set[Cell] = set()
    for tid, attr in chosen:
        t = dirty.by_tid(tid)
        original = t[attr]
        share = 1.0 if attr in typo_only else typo_share
        corrupted = corrupt_cell(original, pools[attr], rng, typo_share=share)
        if corrupted != original:
            t[attr] = corrupted
            errors.add((tid, attr))
    return dirty, errors


def assign_confidences(
    dirty: Relation,
    clean: Relation,
    asserted_rate: float,
    rng: random.Random,
    asserted_conf: float = 1.0,
    default_conf: float = 0.0,
) -> None:
    """Apply the asserted-rate protocol of Exp-4 in place.

    "For each attribute A, we randomly picked asr% of tuples t from the
    data and set t[A].cf = 1, while letting t′[A].cf = 0 for the other
    tuples."  Confidence is assumed correct (Section 5.1), so the asr%
    sample is drawn from the cells that are actually correct.
    """
    if not 0.0 <= asserted_rate <= 1.0:
        raise DataError(f"asserted rate must be in [0, 1], got {asserted_rate}")
    for attr in dirty.schema.names:
        correct_tids = [
            tid
            for tid in dirty.tids()
            if dirty.by_tid(tid)[attr] == clean.by_tid(tid)[attr]
        ]
        count = round(asserted_rate * len(dirty))
        count = min(count, len(correct_tids))
        asserted = set(rng.sample(correct_tids, count)) if count else set()
        for tid in dirty.tids():
            conf = asserted_conf if tid in asserted else default_conf
            dirty.by_tid(tid).set_conf(attr, conf)


def split_rows(
    total: int,
    duplicate_rate: float,
) -> Tuple[int, int]:
    """Split *total* rows into (master-matched, unmatched) counts."""
    if not 0.0 <= duplicate_rate <= 1.0:
        raise DataError(f"duplicate rate must be in [0, 1], got {duplicate_rate}")
    matched = round(duplicate_rate * total)
    return matched, total - matched


class NamePool:
    """Deterministic pools of synthetic proper names, streets and words.

    All pools derive from the seeded RNG, so a dataset is reproducible
    from ``(family, seed, params)`` alone.
    """

    _SYLLABLES = [
        "al", "an", "ar", "bel", "bor", "cam", "dan", "dor", "el", "fen",
        "gar", "hal", "jor", "kel", "lan", "mar", "nor", "or", "pel", "quin",
        "ran", "sel", "tor", "ul", "ver", "wil", "xan", "yor", "zel", "bran",
    ]
    _STREET_KINDS = ["St", "Ave", "Rd", "Blvd", "Ln", "Way", "Dr", "Ct"]

    def __init__(self, rng: random.Random):
        self._rng = rng

    def word(self, syllables: int = 2) -> str:
        """A pronounceable synthetic word."""
        return "".join(self._rng.choice(self._SYLLABLES) for _ in range(syllables))

    def proper_name(self, syllables: int = 2) -> str:
        """A capitalized synthetic name."""
        return self.word(syllables).capitalize()

    def street(self) -> str:
        """A street address like ``"42 Kelmar St"``."""
        number = self._rng.randrange(1, 999)
        return f"{number} {self.proper_name()} {self._rng.choice(self._STREET_KINDS)}"

    def phone(self, digits: int = 7) -> str:
        """A numeric phone string of the given length."""
        first = self._rng.choice("23456789")
        rest = "".join(self._rng.choice(string.digits) for _ in range(digits - 1))
        return first + rest

    def digits(self, count: int) -> str:
        """A fixed-length digit string."""
        return "".join(self._rng.choice(string.digits) for _ in range(count))

    def code(self, prefix: str, width: int, value: int) -> str:
        """A zero-padded identifier like ``"HOSP00042"``."""
        return f"{prefix}{value:0{width}d}"

    def sparse_code(self, prefix: str, width: int) -> str:
        """A unique identifier with random digits, e.g. ``"H382047"``.

        Sparse codes matter for realism *and* for evaluation fidelity:
        with sequential ids a one-character typo frequently lands on
        another valid id (H00042 → H00043), an **undetectable** error that
        silently re-assigns the tuple to a different entity and lets the
        cleaner confidently cascade wrong repairs.  Real registries use
        sparse id spaces where typos almost always produce invalid codes.
        """
        if not hasattr(self, "_used_codes"):
            self._used_codes: set = set()
        while True:
            code = prefix + self.digits(width)
            if code not in self._used_codes:
                self._used_codes.add(code)
                return code
