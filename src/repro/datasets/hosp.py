"""Synthetic HOSP dataset (substitute for the US HHS hospital data).

The paper's HOSP source (hospitalcompare.hhs.gov; 100K records × 19
attributes, 23 CFDs + 3 MDs) is not available offline.  This generator
produces data with the same shape and dependency structure:

* 19 attributes: provider identity, geography (zip → city/state/county),
  contact details and per-measure quality scores;
* geography, provider and measure entities induce the 13 variable CFDs;
* pool-derived constants give 10 constant CFDs (23 total, as in the
  paper);
* 3 MDs identify hospital entities across the dirty data and master data.

Every code path of the cleaning pipeline is exercised the same way the
real data would: constant/variable CFD repairs, entropy conflict groups
(several transactions per provider), similarity-based master matching and
the interaction between them.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from repro.constraints.cfd import CFD
from repro.constraints.md import MD
from repro.datasets.generator import (
    DirtyDataset,
    NamePool,
    assign_confidences,
    inject_noise,
    split_rows,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema

#: The 19 attributes of the HOSP schema.
HOSP_ATTRS = (
    "provider",
    "hospital",
    "address",
    "city",
    "state",
    "zip",
    "county",
    "phone",
    "type",
    "owner",
    "emergency",
    "measure",
    "measure_name",
    "condition",
    "score",
    "sample",
    "state_avg",
    "quarter",
    "source",
)

HOSP_SCHEMA = Schema("hosp", HOSP_ATTRS)

_STATES = ["AL", "AK", "AZ", "CA", "CO", "FL", "GA", "IL", "NY", "TX", "WA", "OH"]
_TYPES = ["Acute Care", "Critical Access", "Childrens"]
_OWNERS = ["Government", "Proprietary", "Voluntary", "Church"]
_CONDITIONS = [
    "Heart Attack",
    "Heart Failure",
    "Pneumonia",
    "Surgical Infection",
    "Emergency",
    "Stroke",
]
_QUARTERS = ["2010Q1", "2010Q2", "2010Q3", "2010Q4"]


def _make_geo(pool: NamePool, rng: random.Random, count: int) -> List[Dict[str, str]]:
    """Zip-code entities: zip determines city, state and county."""
    out = []
    used_zips = set()
    for _ in range(count):
        while True:
            zip_code = pool.digits(5)
            if zip_code not in used_zips:
                used_zips.add(zip_code)
                break
        out.append(
            {
                "zip": zip_code,
                "city": pool.proper_name(2) + " City",
                "state": rng.choice(_STATES),
                "county": pool.proper_name(2) + " County",
            }
        )
    return out


def _make_measures(pool: NamePool, rng: random.Random, count: int) -> List[Dict[str, str]]:
    """Measure entities: code determines name and condition."""
    out = []
    for i in range(count):
        condition = _CONDITIONS[i % len(_CONDITIONS)]
        out.append(
            {
                "measure": pool.sparse_code("AMI-", 4),
                "measure_name": f"{condition} {pool.proper_name(2)} rate",
                "condition": condition,
            }
        )
    return out


def _make_hospitals(
    pool: NamePool,
    rng: random.Random,
    geo: List[Dict[str, str]],
    count: int,
    start_index: int = 0,
) -> List[Dict[str, str]]:
    """Hospital entities: provider id determines all identity attributes.

    Phones and names are unique across hospitals so the FD
    phone → provider and the MD identification premises hold on clean
    data by construction.
    """
    out = []
    used_phones: set = set()
    used_names: set = set()
    for i in range(count):
        place = rng.choice(geo)
        hospital_type = rng.choice(_TYPES)
        while True:
            phone = pool.phone(10)
            if phone not in used_phones:
                used_phones.add(phone)
                break
        while True:
            name = f"{pool.proper_name(2)} {pool.proper_name(2)} Hospital"
            if name not in used_names:
                used_names.add(name)
                break
        out.append(
            {
                "provider": pool.sparse_code("H", 6),
                "hospital": name,
                "address": pool.street(),
                "phone": phone,
                "type": hospital_type,
                "owner": rng.choice(_OWNERS),
                # The generator enforces the constant CFD
                # type='Childrens' → emergency='No'.
                "emergency": "No" if hospital_type == "Childrens" else rng.choice(["Yes", "No"]),
                **place,
            }
        )
    return out


def _row(
    hospital: Dict[str, str],
    measure: Dict[str, str],
    state_avg: Dict[Tuple[str, str], str],
    pool: NamePool,
    rng: random.Random,
) -> Dict[str, Any]:
    """One clean HOSP row: a hospital × measure observation."""
    return {
        **hospital,
        **measure,
        "score": f"{rng.randrange(5, 100)}%",
        "sample": str(rng.randrange(10, 2000)),
        "state_avg": state_avg[(measure["measure"], hospital["state"])],
        "quarter": rng.choice(_QUARTERS),
        "source": "HHS",
    }


def hosp_rules(
    geo: List[Dict[str, str]],
    measures: List[Dict[str, str]],
    state_avg: Dict[Tuple[str, str], str],
) -> Tuple[List[CFD], List[MD]]:
    """The 23 CFDs and 3 MDs of the HOSP workload.

    Constant rules are derived from the generated pools (the analogue of
    the paper "manually designing" rules from the real data).
    """
    s = HOSP_SCHEMA
    cfds: List[CFD] = [
        # 13 variable CFDs (traditional FDs).
        CFD(s, ["zip"], ["city"], name="h_zip_city"),
        CFD(s, ["zip"], ["state"], name="h_zip_state"),
        CFD(s, ["zip"], ["county"], name="h_zip_county"),
        CFD(s, ["provider"], ["hospital"], name="h_prov_hosp"),
        CFD(s, ["provider"], ["address"], name="h_prov_addr"),
        CFD(s, ["provider"], ["zip"], name="h_prov_zip"),
        CFD(s, ["provider"], ["phone"], name="h_prov_phone"),
        CFD(s, ["provider"], ["city"], name="h_prov_city"),
        CFD(s, ["provider"], ["state"], name="h_prov_state"),
        CFD(s, ["measure"], ["measure_name"], name="h_meas_name"),
        CFD(s, ["measure"], ["condition"], name="h_meas_cond"),
        CFD(s, ["measure", "state"], ["state_avg"], name="h_meas_state_avg"),
        CFD(s, ["phone"], ["provider"], name="h_phone_prov"),
    ]
    # 10 constant CFDs derived from the pools.
    g0, g1 = geo[0], geo[1]
    m0, m1 = measures[0], measures[1]
    cfds.extend(
        [
            CFD(s, ["zip"], ["city"], {"zip": g0["zip"], "city": g0["city"]}, name="h_c_zip0_city"),
            CFD(s, ["zip"], ["state"], {"zip": g0["zip"], "state": g0["state"]}, name="h_c_zip0_state"),
            CFD(s, ["zip"], ["city"], {"zip": g1["zip"], "city": g1["city"]}, name="h_c_zip1_city"),
            CFD(s, ["zip"], ["state"], {"zip": g1["zip"], "state": g1["state"]}, name="h_c_zip1_state"),
            CFD(
                s,
                ["measure"],
                ["condition"],
                {"measure": m0["measure"], "condition": m0["condition"]},
                name="h_c_m0_cond",
            ),
            CFD(
                s,
                ["measure"],
                ["measure_name"],
                {"measure": m0["measure"], "measure_name": m0["measure_name"]},
                name="h_c_m0_name",
            ),
            CFD(
                s,
                ["measure"],
                ["condition"],
                {"measure": m1["measure"], "condition": m1["condition"]},
                name="h_c_m1_cond",
            ),
            CFD(
                s,
                ["type"],
                ["emergency"],
                {"type": "Childrens", "emergency": "No"},
                name="h_c_childrens",
            ),
            CFD(s, [], ["source"], rhs_pattern={"source": "HHS"}, name="h_c_source"),
            CFD(
                s,
                ["measure", "state"],
                ["state_avg"],
                {
                    "measure": m0["measure"],
                    "state": g0["state"],
                    "state_avg": state_avg[(m0["measure"], g0["state"])],
                },
                name="h_c_avg0",
            ),
        ]
    )
    assert len(cfds) == 23, f"expected 23 HOSP CFDs, got {len(cfds)}"

    from repro.similarity.predicates import edit_within

    # Every premise includes state= — the natural blocking attribute of
    # hospital matching.  A corrupted state therefore hides a tuple from
    # *all* matching rules until repairing restores it (via zip → state),
    # which is precisely the repairing-helps-matching interaction of
    # Exp-2.
    mds: List[MD] = [
        MD(
            s,
            s,
            [
                ("zip", "zip"),
                ("phone", "phone", edit_within(2)),
                ("hospital", "hospital", edit_within(3)),
                ("state", "state"),
            ],
            [("provider", "provider")],
            name="h_md_identity",
        ),
        MD(
            s,
            s,
            [("provider", "provider"), ("state", "state")],
            [("hospital", "hospital"), ("phone", "phone"), ("address", "address")],
            name="h_md_provider",
        ),
        MD(
            s,
            s,
            [
                ("hospital", "hospital", edit_within(2)),
                ("city", "city"),
                ("state", "state"),
            ],
            [("zip", "zip"), ("provider", "provider")],
            name="h_md_geo",
        ),
    ]
    return cfds, mds


def generate_hosp(
    size: int = 300,
    master_size: int = 150,
    noise_rate: float = 0.06,
    duplicate_rate: float = 0.4,
    asserted_rate: float = 0.4,
    seed: int = 7,
) -> DirtyDataset:
    """Generate a HOSP benchmark instance.

    Parameters mirror the paper's Exp knobs: ``size`` = |D|,
    ``master_size`` = |Dm|, ``noise_rate`` = noi%, ``duplicate_rate`` =
    dup%, ``asserted_rate`` = asr%.  Deterministic given ``seed``.
    """
    rng = random.Random(seed)
    pool = NamePool(rng)
    geo = _make_geo(pool, rng, max(6, size // 30))
    measures = _make_measures(pool, rng, max(4, min(12, size // 25)))
    state_avg: Dict[Tuple[str, str], str] = {
        (m["measure"], st): f"{rng.randrange(20, 95)}%" for m in measures for st in _STATES
    }

    # Keep per-hospital redundancy inside D low (~2 rows per hospital):
    # master data must contribute values D cannot reconstruct on its own,
    # which is where the matching-helps-repairing interaction shows.
    master_hospital_count = max(3, master_size // 2)
    extra_hospital_count = max(2, master_hospital_count // 2)
    master_hospitals = _make_hospitals(pool, rng, geo, master_hospital_count)
    extra_hospitals = _make_hospitals(
        pool, rng, geo, extra_hospital_count, start_index=master_hospital_count
    )

    # Master data: hospital × measure observations, clean by construction.
    master = Relation(HOSP_SCHEMA)
    master_rows_of_provider: Dict[str, List[int]] = {}
    combos = [(h, m) for h in master_hospitals for m in measures]
    rng.shuffle(combos)
    for hospital, measure in combos[:master_size]:
        t = master.add_row(_row(hospital, measure, state_avg, pool, rng))
        master_rows_of_provider.setdefault(hospital["provider"], []).append(t.tid)

    # Ensure every master hospital has at least one master row.
    for hospital in master_hospitals:
        if hospital["provider"] not in master_rows_of_provider:
            t = master.add_row(_row(hospital, rng.choice(measures), state_avg, pool, rng))
            master_rows_of_provider[hospital["provider"]] = [t.tid]

    matched_count, unmatched_count = split_rows(size, duplicate_rate)
    clean = Relation(HOSP_SCHEMA)
    true_matches = set()
    for _ in range(matched_count):
        hospital = rng.choice(master_hospitals)
        t = clean.add_row(_row(hospital, rng.choice(measures), state_avg, pool, rng))
        for sid in master_rows_of_provider[hospital["provider"]]:
            true_matches.add((t.tid, sid))
    for _ in range(unmatched_count):
        hospital = rng.choice(extra_hospitals)
        clean.add_row(_row(hospital, rng.choice(measures), state_avg, pool, rng))

    dirty, errors = inject_noise(
        clean,
        noise_rate,
        rng,
        typo_only_attrs=("provider", "measure", "zip", "phone", "type"),
    )
    assign_confidences(dirty, clean, asserted_rate, rng)
    cfds, mds = hosp_rules(geo, measures, state_avg)
    return DirtyDataset(
        name="hosp",
        schema=HOSP_SCHEMA,
        master=master,
        clean=clean,
        dirty=dirty,
        cfds=cfds,
        mds=mds,
        true_matches=true_matches,
        errors=errors,
        params={
            "size": size,
            "master_size": master_size,
            "noise_rate": noise_rate,
            "duplicate_rate": duplicate_rate,
            "asserted_rate": asserted_rate,
            "seed": seed,
        },
    )
