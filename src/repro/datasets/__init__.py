"""Benchmark dataset generators (Section 8 workloads).

Real HOSP/DBLP downloads and the TPC-H generator are unavailable offline,
so these modules generate data with the same schema shapes and dependency
structure (see DESIGN.md "Substitutions").  All generators are
deterministic given a seed and return a :class:`DirtyDataset` carrying the
master data, the dirty relation, the rule sets and full ground truth.
"""

from repro.datasets.dblp import DBLP_SCHEMA, dblp_rules, generate_dblp
from repro.datasets.generator import (
    DirtyDataset,
    NamePool,
    assign_confidences,
    corrupt_cell,
    derive_rng,
    derive_seed,
    inject_noise,
    split_rows,
    typo,
)
from repro.datasets.hosp import HOSP_SCHEMA, generate_hosp, hosp_rules
from repro.datasets.partitioned import (
    PART_SCHEMA,
    generate_partitioned,
    part_rules,
    replan_batch,
)
from repro.datasets.tpch import TPCH_SCHEMA, generate_tpch, tpch_cfds, tpch_mds

__all__ = [
    "DBLP_SCHEMA",
    "DirtyDataset",
    "HOSP_SCHEMA",
    "NamePool",
    "PART_SCHEMA",
    "TPCH_SCHEMA",
    "assign_confidences",
    "corrupt_cell",
    "dblp_rules",
    "derive_rng",
    "derive_seed",
    "generate_dblp",
    "generate_hosp",
    "generate_partitioned",
    "generate_tpch",
    "hosp_rules",
    "inject_noise",
    "part_rules",
    "replan_batch",
    "split_rows",
    "tpch_cfds",
    "tpch_mds",
    "typo",
]
