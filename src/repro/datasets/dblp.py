"""Synthetic DBLP dataset (substitute for the DBLP bibliography extract).

The paper's DBLP source (400K tuples × 12 attributes, 7 CFDs + 3 MDs) is
not available offline; this generator produces bibliography-shaped data
with the same rule structure: venue entities determine publisher/series,
(venue, volume) determines year, publication entities determine
title/pages/ee, and MDs identify publications across dirty data and
master data by title/author similarity.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from repro.constraints.cfd import CFD
from repro.constraints.md import MD
from repro.datasets.generator import (
    DirtyDataset,
    NamePool,
    assign_confidences,
    inject_noise,
    split_rows,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.similarity.predicates import edit_within

#: The 12 attributes of the DBLP schema.
DBLP_ATTRS = (
    "key",
    "title",
    "authors",
    "venue",
    "year",
    "volume",
    "pages",
    "publisher",
    "series",
    "ee",
    "type",
    "month",
)

DBLP_SCHEMA = Schema("dblp", DBLP_ATTRS)

_VENUES = [
    ("SIGMOD", "ACM", "SIGMOD Proceedings"),
    ("VLDB", "VLDB Endowment", "PVLDB"),
    ("ICDE", "IEEE", "ICDE Proceedings"),
    ("EDBT", "OpenProceedings", "EDBT Series"),
    ("PODS", "ACM", "PODS Proceedings"),
    ("TODS", "ACM", "ACM Transactions"),
]
_MONTHS = ["January", "March", "June", "September", "December"]
_TOPICS = [
    "data cleaning",
    "record matching",
    "query optimization",
    "stream processing",
    "data integration",
    "provenance",
    "schema mapping",
    "entity resolution",
]


def _make_venue_volumes(rng: random.Random) -> List[Dict[str, str]]:
    """Venue-volume entities: (venue, volume) determines year."""
    out = []
    for venue, publisher, series in _VENUES:
        for volume in range(1, 9):
            out.append(
                {
                    "venue": venue,
                    "publisher": publisher,
                    "series": series,
                    "volume": str(volume),
                    "year": str(2000 + volume + rng.randrange(0, 3)),
                }
            )
    return out


def _make_publications(
    pool: NamePool,
    rng: random.Random,
    venue_volumes: List[Dict[str, str]],
    count: int,
    start_index: int = 0,
) -> List[Dict[str, Any]]:
    """Publication entities: key determines all bibliographic attributes."""
    out = []
    used_titles: set = set()
    for i in range(count):
        vv = rng.choice(venue_volumes)
        while True:
            title = (
                f"On {rng.choice(_TOPICS)} via {pool.word(2)} {pool.word(2)}"
            ).title()
            if title not in used_titles:
                used_titles.add(title)
                break
        first_page = rng.randrange(1, 500)
        out.append(
            {
                "key": f"conf/{vv['venue'].lower()}/{pool.word(2)}{start_index + i}",
                "title": title,
                "authors": f"{pool.proper_name()} {pool.proper_name()} and "
                f"{pool.proper_name()} {pool.proper_name()}",
                "pages": f"{first_page}-{first_page + rng.randrange(5, 20)}",
                "ee": f"https://doi.org/10.1145/{pool.digits(6)}",
                "type": "inproceedings" if vv["venue"] != "TODS" else "article",
                "month": rng.choice(_MONTHS),
                **vv,
            }
        )
    return out


def dblp_rules() -> Tuple[List[CFD], List[MD]]:
    """The 7 CFDs and 3 MDs of the DBLP workload."""
    s = DBLP_SCHEMA
    cfds: List[CFD] = [
        # 4 variable CFDs.
        CFD(s, ["venue"], ["publisher"], name="d_venue_pub"),
        CFD(s, ["venue"], ["series"], name="d_venue_series"),
        CFD(s, ["venue", "volume"], ["year"], name="d_vv_year"),
        CFD(s, ["key"], ["title"], name="d_key_title"),
        # 3 constant CFDs.
        CFD(
            s,
            ["venue"],
            ["publisher"],
            {"venue": "SIGMOD", "publisher": "ACM"},
            name="d_c_sigmod",
        ),
        CFD(
            s,
            ["venue"],
            ["publisher"],
            {"venue": "VLDB", "publisher": "VLDB Endowment"},
            name="d_c_vldb",
        ),
        CFD(
            s,
            ["type"],
            ["type"],
            lhs_pattern={"type": "inproc"},
            rhs_pattern={"type": "inproceedings"},
            name="d_c_type_norm",
        ),
    ]
    assert len(cfds) == 7, f"expected 7 DBLP CFDs, got {len(cfds)}"
    mds: List[MD] = [
        # Duplicate records carry their own DBLP keys, so entity identity
        # flows through titles, author lists and DOIs (ee), never keys.
        # Every premise includes year= (the natural bibliography blocking
        # attribute): a corrupted year hides a record from all matching
        # rules until (venue, volume) → year repairs it — the Exp-2
        # interaction.
        MD(
            s,
            s,
            [("title", "title", edit_within(3)), ("year", "year")],
            [("ee", "ee")],
            name="d_md_title",
        ),
        MD(
            s,
            s,
            [("ee", "ee"), ("year", "year")],
            [("title", "title"), ("pages", "pages")],
            name="d_md_ee",
        ),
        MD(
            s,
            s,
            [
                ("authors", "authors", edit_within(5)),
                ("venue", "venue"),
                ("year", "year"),
            ],
            [("title", "title"), ("ee", "ee")],
            name="d_md_authors",
        ),
    ]
    return cfds, mds


def generate_dblp(
    size: int = 300,
    master_size: int = 150,
    noise_rate: float = 0.06,
    duplicate_rate: float = 0.4,
    asserted_rate: float = 0.4,
    seed: int = 11,
) -> DirtyDataset:
    """Generate a DBLP benchmark instance (parameters as in the paper).

    ``dup%`` of the dirty tuples describe publications present in the
    master data; the rest are publications the master has never seen.
    Some type values are abbreviated to ``"inproc"`` as alias noise for
    the normalization rule ``d_c_type_norm`` (the φ4 analogue).
    """
    rng = random.Random(seed)
    pool = NamePool(rng)
    venue_volumes = _make_venue_volumes(rng)

    master_pub_count = max(3, master_size)
    extra_pub_count = max(2, size)
    master_pubs = _make_publications(pool, rng, venue_volumes, master_pub_count)
    extra_pubs = _make_publications(
        pool, rng, venue_volumes, extra_pub_count, start_index=master_pub_count
    )

    master = Relation(DBLP_SCHEMA)
    master_tid_of_key: Dict[str, int] = {}
    for pub in master_pubs[:master_size]:
        t = master.add_row(pub)
        master_tid_of_key[pub["key"]] = t.tid  # type: ignore[assignment]

    matched_count, unmatched_count = split_rows(size, duplicate_rate)
    clean = Relation(DBLP_SCHEMA)
    true_matches = set()
    indexed_master = master_pubs[:master_size]
    for i in range(matched_count):
        pub = rng.choice(indexed_master)
        duplicate = dict(pub)
        # A duplicate record of the same publication: its own DBLP key,
        # but the same DOI (ee) — the realistic dedup scenario.
        duplicate["key"] = f"{pub['key']}-dup{i}"
        t = clean.add_row(duplicate)
        true_matches.add((t.tid, master_tid_of_key[pub["key"]]))
    for _ in range(unmatched_count):
        clean.add_row(dict(rng.choice(extra_pubs)))

    dirty, errors = inject_noise(
        clean,
        noise_rate,
        rng,
        typo_only_attrs=("key", "venue", "volume", "type"),
    )

    # Alias noise for the normalization rule: abbreviate some clean
    # "inproceedings" type cells to "inproc".
    alias_candidates = [
        tid
        for tid in dirty.tids()
        if dirty.by_tid(tid)["type"] == "inproceedings"
        and (tid, "type") not in errors
    ]
    alias_count = min(len(alias_candidates), max(1, size // 25))
    for tid in rng.sample(alias_candidates, alias_count):
        dirty.by_tid(tid)["type"] = "inproc"
        errors.add((tid, "type"))

    assign_confidences(dirty, clean, asserted_rate, rng)
    cfds, mds = dblp_rules()
    return DirtyDataset(
        name="dblp",
        schema=DBLP_SCHEMA,
        master=master,
        clean=clean,
        dirty=dirty,
        cfds=cfds,
        mds=mds,
        true_matches=true_matches,
        errors=errors,
        params={
            "size": size,
            "master_size": master_size,
            "noise_rate": noise_rate,
            "duplicate_rate": duplicate_rate,
            "asserted_rate": asserted_rate,
            "seed": seed,
        },
    )
