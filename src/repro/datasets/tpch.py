"""Synthetic TPC-H dataset (substitute for the TPC-H benchmark join).

The paper "generated [TPC-H data] from TPC-H benchmark by joining all
tables together into a single table ... 100K tuples, each with 58
attributes ... 55 FDs ... 55 CFDs and 10 MDs were used by default", and
uses it purely for scalability (Exp-5).  This generator emits a
denormalized lineitem-order-customer-part-supplier-nation-region row with
exactly 58 attributes whose key → attribute dependencies yield the 55
FDs; 10 MDs identify customer/supplier/part entities against master data.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from repro.constraints.cfd import CFD
from repro.constraints.md import MD
from repro.datasets.generator import (
    DirtyDataset,
    NamePool,
    assign_confidences,
    inject_noise,
    split_rows,
)
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.similarity.predicates import edit_within

#: The 58 attributes of the denormalized TPC-H schema.
TPCH_ATTRS = (
    # lineitem (16)
    "l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity",
    "l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus",
    "l_shipdate", "l_commitdate", "l_receiptdate", "l_shipinstruct",
    "l_shipmode", "l_shipyear",
    # orders (9)
    "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate",
    "o_orderpriority", "o_clerk", "o_shippriority", "o_comment", "o_orderyear",
    # customer (12)
    "c_name", "c_address", "c_city", "c_zip", "c_nationkey", "c_nation",
    "c_region", "c_phone", "c_acctbal", "c_mktsegment", "c_comment",
    "c_regionkey",
    # part (10)
    "p_name", "p_mfgr", "p_brand", "p_type", "p_size", "p_container",
    "p_retailprice", "p_comment", "p_color", "p_series",
    # supplier (11)
    "s_name", "s_address", "s_city", "s_zip", "s_nationkey", "s_nation",
    "s_region", "s_phone", "s_acctbal", "s_comment", "s_regionkey",
)

TPCH_SCHEMA = Schema("tpch", TPCH_ATTRS)

assert len(TPCH_ATTRS) == 58, f"TPC-H schema must have 58 attributes, has {len(TPCH_ATTRS)}"

_NATIONS = [
    ("ALGERIA", "AFRICA"), ("BRAZIL", "AMERICA"), ("CANADA", "AMERICA"),
    ("FRANCE", "EUROPE"), ("GERMANY", "EUROPE"), ("INDIA", "ASIA"),
    ("JAPAN", "ASIA"), ("KENYA", "AFRICA"), ("PERU", "AMERICA"),
    ("CHINA", "ASIA"), ("ROMANIA", "EUROPE"), ("EGYPT", "MIDDLE EAST"),
]
_REGION_KEY = {region: str(i) for i, region in enumerate(
    ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
)}
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_COLORS = ["red", "green", "blue", "ivory", "plum", "sienna", "khaki", "linen"]
_CONTAINERS = ["SM BOX", "LG CASE", "MED DRUM", "JUMBO JAR", "WRAP PACK"]
_MODES = ["AIR", "RAIL", "SHIP", "TRUCK", "MAIL"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
_INSTRUCTS = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"]


def _nation_fields(prefix: str, rng: random.Random) -> Dict[str, str]:
    index = rng.randrange(len(_NATIONS))
    nation, region = _NATIONS[index]
    return {
        f"{prefix}_nationkey": str(index),
        f"{prefix}_nation": nation,
        f"{prefix}_region": region,
        f"{prefix}_regionkey": _REGION_KEY[region],
    }


def _unique(make: Any, used: set) -> Any:
    """Draw from *make()* until the value is fresh (keeps clean data FD-consistent)."""
    while True:
        value = make()
        if value not in used:
            used.add(value)
            return value


_USED_ZIPS: set = set()
_USED_PHONES: set = set()
_USED_NAMES: set = set()


def _reset_pools() -> None:
    """Clear cross-call uniqueness pools (one generator run = one dataset)."""
    _USED_ZIPS.clear()
    _USED_PHONES.clear()
    _USED_NAMES.clear()


def _make_customers(pool: NamePool, rng: random.Random, count: int, start: int = 0):
    out = []
    for i in range(count):
        out.append(
            {
                "o_custkey": pool.sparse_code("C", 7),
                "c_name": _unique(lambda: f"Customer {pool.proper_name(3)}", _USED_NAMES),
                "c_address": pool.street(),
                "c_city": pool.proper_name(2) + " City",
                "c_zip": _unique(lambda: pool.digits(5), _USED_ZIPS),
                "c_phone": _unique(lambda: pool.phone(10), _USED_PHONES),
                "c_acctbal": f"{rng.randrange(-999, 9999)}.{rng.randrange(100):02d}",
                "c_mktsegment": rng.choice(_SEGMENTS),
                "c_comment": pool.word(3),
                **_nation_fields("c", rng),
            }
        )
    return out


def _make_parts(pool: NamePool, rng: random.Random, count: int, start: int = 0):
    out = []
    for i in range(count):
        color = rng.choice(_COLORS)
        mfgr = f"Manufacturer#{rng.randrange(1, 6)}"
        out.append(
            {
                "l_partkey": pool.sparse_code("P", 7),
                "p_name": f"{color} {pool.word(2)} {pool.word(2)}",
                "p_mfgr": mfgr,
                "p_brand": f"Brand#{mfgr[-1]}{rng.randrange(1, 6)}",
                "p_type": f"{rng.choice(['STANDARD', 'SMALL', 'LARGE'])} "
                f"{rng.choice(['ANODIZED', 'BURNISHED', 'PLATED'])} "
                f"{rng.choice(['TIN', 'NICKEL', 'STEEL'])}",
                "p_size": str(rng.randrange(1, 50)),
                "p_container": rng.choice(_CONTAINERS),
                "p_retailprice": f"{rng.randrange(900, 2000)}.{rng.randrange(100):02d}",
                "p_comment": pool.word(2),
                "p_color": color,
                "p_series": f"S{rng.randrange(1, 9)}",
            }
        )
    return out


def _make_suppliers(pool: NamePool, rng: random.Random, count: int, start: int = 0):
    out = []
    for i in range(count):
        out.append(
            {
                "l_suppkey": pool.sparse_code("S", 7),
                "s_name": _unique(lambda: f"Supplier {pool.proper_name(3)}", _USED_NAMES),
                "s_address": pool.street(),
                "s_city": pool.proper_name(2) + " City",
                "s_zip": _unique(lambda: pool.digits(5), _USED_ZIPS),
                "s_phone": _unique(lambda: pool.phone(10), _USED_PHONES),
                "s_acctbal": f"{rng.randrange(-999, 9999)}.{rng.randrange(100):02d}",
                "s_comment": pool.word(3),
                **_nation_fields("s", rng),
            }
        )
    return out


def _make_orders(pool: NamePool, rng: random.Random, customers, count: int, start: int = 0):
    out = []
    for i in range(count):
        customer = rng.choice(customers)
        year = rng.randrange(1992, 1999)
        out.append(
            {
                "l_orderkey": pool.sparse_code("O", 8),
                "o_custkey": customer["o_custkey"],
                "o_orderstatus": rng.choice(["F", "O", "P"]),
                "o_totalprice": f"{rng.randrange(1000, 400000)}.{rng.randrange(100):02d}",
                "o_orderdate": f"{year}-{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d}",
                "o_orderpriority": rng.choice(_PRIORITIES),
                "o_clerk": f"Clerk#{pool.digits(9)}",
                "o_shippriority": "0",
                "o_comment": pool.word(3),
                "o_orderyear": str(year),
                "_customer": customer,
            }
        )
    return out


def _row(order, part, supplier, pool: NamePool, rng: random.Random, linenumber: int):
    ship_year = rng.randrange(1992, 1999)
    ship_date = f"{ship_year}-{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d}"
    row: Dict[str, Any] = {
        "l_linenumber": str(linenumber),
        "l_quantity": str(rng.randrange(1, 51)),
        "l_extendedprice": f"{rng.randrange(1000, 90000)}.{rng.randrange(100):02d}",
        "l_discount": f"0.0{rng.randrange(10)}",
        "l_tax": f"0.0{rng.randrange(9)}",
        "l_returnflag": rng.choice(["A", "N", "R"]),
        "l_linestatus": rng.choice(["F", "O"]),
        "l_shipdate": ship_date,
        "l_commitdate": f"{ship_year}-{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d}",
        "l_receiptdate": f"{ship_year}-{rng.randrange(1, 13):02d}-{rng.randrange(1, 29):02d}",
        "l_shipinstruct": rng.choice(_INSTRUCTS),
        "l_shipmode": rng.choice(_MODES),
        "l_shipyear": str(ship_year),
    }
    row.update({k: v for k, v in order.items() if not k.startswith("_")})
    row.update(order["_customer"])
    row.update(part)
    row.update(supplier)
    return row


#: FD groups: key attribute(s) → dependent attributes.
_FD_GROUPS: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = [
    (
        ("o_custkey",),
        (
            "c_name", "c_address", "c_city", "c_zip", "c_nationkey", "c_nation",
            "c_region", "c_phone", "c_acctbal", "c_mktsegment", "c_comment",
            "c_regionkey",
        ),
    ),
    (
        ("l_partkey",),
        (
            "p_name", "p_mfgr", "p_brand", "p_type", "p_size", "p_container",
            "p_retailprice", "p_comment", "p_color", "p_series",
        ),
    ),
    (
        ("l_suppkey",),
        (
            "s_name", "s_address", "s_city", "s_zip", "s_nationkey", "s_nation",
            "s_region", "s_phone", "s_acctbal", "s_comment", "s_regionkey",
        ),
    ),
    (
        ("l_orderkey",),
        (
            "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate",
            "o_orderpriority", "o_clerk", "o_shippriority", "o_comment",
            "o_orderyear",
        ),
    ),
    (("c_nationkey",), ("c_nation", "c_region")),
    (("s_nationkey",), ("s_nation", "s_region")),
    (("l_shipdate",), ("l_shipyear",)),
    (("c_zip",), ("c_city",)),
    (("s_zip",), ("s_city",)),
    (("o_orderdate",), ("o_orderyear",)),
    (("c_nation",), ("c_region", "c_regionkey")),
    (("s_nation",), ("s_region", "s_regionkey")),
    (("c_region",), ("c_regionkey",)),
]


def tpch_cfds() -> List[CFD]:
    """The 55 FDs of the TPC-H workload, as normalized CFDs."""
    out: List[CFD] = []
    for lhs, rhs_attrs in _FD_GROUPS:
        for rhs in rhs_attrs:
            out.append(
                CFD(
                    TPCH_SCHEMA,
                    list(lhs),
                    [rhs],
                    name=f"t_{'_'.join(lhs)}__{rhs}",
                )
            )
    assert len(out) == 55, f"expected 55 TPC-H FDs, got {len(out)}"
    return out


def tpch_mds() -> List[MD]:
    """The 10 default MDs of the TPC-H workload."""
    s = TPCH_SCHEMA
    specs = [
        ([("c_phone", "c_phone"), ("c_name", "c_name", edit_within(3))],
         [("o_custkey", "o_custkey")], "t_md_cust_id"),
        ([("o_custkey", "o_custkey")], [("c_phone", "c_phone")], "t_md_cust_phone"),
        ([("o_custkey", "o_custkey")], [("c_address", "c_address")], "t_md_cust_addr"),
        ([("s_phone", "s_phone"), ("s_name", "s_name", edit_within(3))],
         [("l_suppkey", "l_suppkey")], "t_md_supp_id"),
        ([("l_suppkey", "l_suppkey")], [("s_phone", "s_phone")], "t_md_supp_phone"),
        ([("l_suppkey", "l_suppkey")], [("s_address", "s_address")], "t_md_supp_addr"),
        ([("p_name", "p_name", edit_within(2)), ("p_brand", "p_brand")],
         [("l_partkey", "l_partkey")], "t_md_part_id"),
        ([("l_partkey", "l_partkey")], [("p_type", "p_type")], "t_md_part_type"),
        ([("l_orderkey", "l_orderkey")], [("o_orderdate", "o_orderdate")], "t_md_order_date"),
        ([("c_name", "c_name"), ("c_zip", "c_zip")], [("c_address", "c_address")],
         "t_md_cust_geo"),
    ]
    out = [MD(s, s, premise, rhs, name=name) for premise, rhs, name in specs]
    assert len(out) == 10
    return out


def generate_tpch(
    size: int = 200,
    master_size: int = 100,
    noise_rate: float = 0.06,
    duplicate_rate: float = 0.4,
    asserted_rate: float = 0.4,
    seed: int = 13,
    n_cfds: int = 55,
    n_mds: int = 10,
) -> DirtyDataset:
    """Generate a TPC-H scalability instance.

    ``n_cfds`` and ``n_mds`` subset the rule sets — Exp-5 varies |Σ| and
    |Γ| (Figs. 14g/14h); the paper similarly "controlled the number of
    CFDs and MDs".
    """
    rng = random.Random(seed)
    pool = NamePool(rng)
    _reset_pools()
    scale = max(3, size // 12)
    master_customers = _make_customers(pool, rng, scale)
    extra_customers = _make_customers(pool, rng, max(2, scale // 2), start=scale)
    parts = _make_parts(pool, rng, scale * 2)
    suppliers = _make_suppliers(pool, rng, scale)
    master_orders = _make_orders(pool, rng, master_customers, scale * 2)
    extra_orders = _make_orders(
        pool, rng, extra_customers, max(2, scale), start=scale * 2
    )

    master = Relation(TPCH_SCHEMA)
    master_tids_of_custkey: Dict[str, List[int]] = {}
    for i in range(master_size):
        order = rng.choice(master_orders)
        t = master.add_row(
            _row(order, rng.choice(parts), rng.choice(suppliers), pool, rng, i % 7 + 1)
        )
        master_tids_of_custkey.setdefault(order["o_custkey"], []).append(t.tid)

    matched_count, unmatched_count = split_rows(size, duplicate_rate)
    clean = Relation(TPCH_SCHEMA)
    true_matches = set()
    matchable_orders = [
        o for o in master_orders if o["o_custkey"] in master_tids_of_custkey
    ]
    for i in range(matched_count):
        order = rng.choice(matchable_orders)
        t = clean.add_row(
            _row(order, rng.choice(parts), rng.choice(suppliers), pool, rng, i % 7 + 1)
        )
        for sid in master_tids_of_custkey[order["o_custkey"]]:
            true_matches.add((t.tid, sid))
    for i in range(unmatched_count):
        order = rng.choice(extra_orders)
        clean.add_row(
            _row(order, rng.choice(parts), rng.choice(suppliers), pool, rng, i % 7 + 1)
        )

    dirty, errors = inject_noise(
        clean,
        noise_rate,
        rng,
        typo_only_attrs=(
            "l_orderkey", "l_partkey", "l_suppkey", "o_custkey",
            "c_nationkey", "s_nationkey", "c_nation", "s_nation",
            "c_region", "s_region", "c_zip", "s_zip",
            "l_shipdate", "o_orderdate",
        ),
    )
    assign_confidences(dirty, clean, asserted_rate, rng)
    cfds = tpch_cfds()[:n_cfds]
    mds = tpch_mds()[:n_mds]
    return DirtyDataset(
        name="tpch",
        schema=TPCH_SCHEMA,
        master=master,
        clean=clean,
        dirty=dirty,
        cfds=cfds,
        mds=mds,
        true_matches=true_matches,
        errors=errors,
        params={
            "size": size,
            "master_size": master_size,
            "noise_rate": noise_rate,
            "duplicate_rate": duplicate_rate,
            "asserted_rate": asserted_rate,
            "seed": seed,
            "n_cfds": n_cfds,
            "n_mds": n_mds,
        },
    )
