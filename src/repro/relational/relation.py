"""Relation instances: ordered collections of :class:`CTuple` rows.

A :class:`Relation` owns its tuples and assigns tuple identifiers (tids).
Cleaning algorithms operate on a *clone* of the dirty relation, mutate
tuples in place and record the edits in a fix log; the original relation is
never modified.

Cell mutations that go through :meth:`Relation.set_value` are broadcast to
registered observers, which is how incremental indexes (the violation
index, the entropy index) stay coherent with in-place :class:`CTuple`
mutation.  Tuple inserts (:meth:`Relation.add`) and deletes
(:meth:`Relation.remove`) are broadcast the same way, so a
:class:`~repro.pipeline.changeset.Changeset` applied to an observed
relation keeps every derived structure coherent without rebuilds.
Observers are *not* carried over by :meth:`clone` — each clone starts
with a clean observer list.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.exceptions import DataError
from repro.relational.schema import Schema
from repro.relational.tuples import CTuple


class Relation:
    """An instance of a :class:`~repro.relational.schema.Schema`.

    Parameters
    ----------
    schema:
        Relation schema.
    tuples:
        Optional initial tuples; tids are (re-)assigned on insertion when
        absent or conflicting.

    Notes
    -----
    Tuples are stored in insertion order, addressable by tid in O(1).
    """

    __slots__ = (
        "schema",
        "_tuples",
        "_next_tid",
        "_retired",
        "_observers",
        "_insert_observers",
        "_delete_observers",
    )

    def __init__(self, schema: Schema, tuples: Iterable[CTuple] = ()):
        self.schema = schema
        self._tuples: Dict[int, CTuple] = {}
        self._next_tid = 0
        self._retired: Set[int] = set()
        self._observers: List[Callable[[CTuple, str, Any, Any], None]] = []
        self._insert_observers: List[Callable[[CTuple], None]] = []
        self._delete_observers: List[Callable[[CTuple], None]] = []
        for t in tuples:
            self.add(t)

    # ------------------------------------------------------------------
    # Pickling (process-pool sharding ships relations across workers)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Pickle tuples and tid bookkeeping; observers are process-local
        callables (often closures over index state) and are dropped, the
        same way :meth:`clone` starts with a clean observer list."""
        return {
            "schema": self.schema,
            "tuples": list(self._tuples.values()),
            "next_tid": self._next_tid,
            "retired": sorted(self._retired),
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.schema = state["schema"]
        self._tuples = {t.tid: t for t in state["tuples"]}
        self._next_tid = state["next_tid"]
        self._retired = set(state["retired"])
        self._observers = []
        self._insert_observers = []
        self._delete_observers = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(
        cls,
        schema: Schema,
        rows: Iterable[Mapping[str, Any]],
        confidences: Optional[Iterable[Mapping[str, Optional[float]]]] = None,
    ) -> "Relation":
        """Build a relation from dict rows (and optional confidence dicts)."""
        relation = cls(schema)
        if confidences is None:
            for row in rows:
                relation.add(CTuple(schema, row))
        else:
            conf_list = list(confidences)
            row_list = list(rows)
            if len(conf_list) != len(row_list):
                raise DataError("rows and confidences must have equal length")
            for row, conf in zip(row_list, conf_list):
                relation.add(CTuple(schema, row, conf))
        return relation

    def add(self, t: CTuple) -> CTuple:
        """Insert tuple *t*, assigning a fresh tid when needed.

        A fresh tid is assigned when ``t.tid`` is ``None``, collides with
        a live tuple, or names a tid that was previously :meth:`remove`\\ d
        — removed tids are *never* reused, so session state keyed by a
        dead tid (per-cell cost maps, fix-log entries) can never alias a
        later insert.  Explicit tids that were never assigned (gaps below
        ``_next_tid``) are honoured.

        Returns the inserted tuple (same object).
        """
        if t.schema != self.schema:
            raise DataError(
                f"tuple of schema {t.schema.name!r} cannot join relation "
                f"of schema {self.schema.name!r}"
            )
        if t.tid is None or t.tid in self._tuples or t.tid in self._retired:
            t.tid = self._next_tid
        self._tuples[t.tid] = t
        self._next_tid = max(self._next_tid, t.tid) + 1
        for observer in self._insert_observers:
            observer(t)
        return t

    def add_row(
        self,
        values: Mapping[str, Any],
        confidences: Optional[Mapping[str, Optional[float]]] = None,
    ) -> CTuple:
        """Convenience: build and insert a tuple from dicts."""
        return self.add(CTuple(self.schema, values, confidences))

    def remove(self, tid: int) -> CTuple:
        """Delete the tuple with identifier *tid*, notifying observers.

        Tids are never reused: ``_next_tid`` stays monotonic *and* the
        removed tid is retired, so a later :meth:`add` — even one passing
        the same tid explicitly — cannot alias the dead tuple (it gets a
        fresh tid instead).  Returns the removed tuple (its values stay
        intact, which delete observers rely on to locate the tuple in
        their structures).
        """
        try:
            t = self._tuples.pop(tid)
        except KeyError:
            raise DataError(f"relation {self.schema.name!r} has no tuple #{tid}") from None
        self._retired.add(tid)
        for observer in self._delete_observers:
            observer(t)
        return t

    def tid_retired(self, tid: int) -> bool:
        """Whether *tid* belonged to a tuple that was removed (such tids
        are never assigned again)."""
        return tid in self._retired

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def by_tid(self, tid: int) -> CTuple:
        """Return the tuple with identifier *tid*."""
        try:
            return self._tuples[tid]
        except KeyError:
            raise DataError(f"relation {self.schema.name!r} has no tuple #{tid}") from None

    def has_tid(self, tid: int) -> bool:
        """Whether a tuple with identifier *tid* is currently present."""
        return tid in self._tuples

    def tids(self) -> Tuple[int, ...]:
        """All tuple identifiers, in insertion order."""
        return tuple(self._tuples.keys())

    def tuples(self) -> List[CTuple]:
        """All tuples, in insertion order (a fresh list)."""
        return list(self._tuples.values())

    def __iter__(self) -> Iterator[CTuple]:
        return iter(self._tuples.values())

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, t: object) -> bool:
        if isinstance(t, CTuple):
            return t.tid in self._tuples and self._tuples[t.tid] is t
        return False

    # ------------------------------------------------------------------
    # Mutation with change notification
    # ------------------------------------------------------------------
    def add_observer(self, observer: Callable[[CTuple, str, Any, Any], None]) -> None:
        """Register *observer* for cell-change notifications.

        Observers are callables ``(t, attr, old_value, new_value)`` invoked
        *after* the tuple has been mutated by :meth:`set_value`.  They must
        not mutate the relation re-entrantly.
        """
        if observer not in self._observers:
            self._observers.append(observer)

    def remove_observer(self, observer: Callable[[CTuple, str, Any, Any], None]) -> None:
        """Unregister *observer* (a no-op when it was never registered)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def add_insert_observer(self, observer: Callable[[CTuple], None]) -> None:
        """Register *observer* for tuple inserts (called after :meth:`add`)."""
        if observer not in self._insert_observers:
            self._insert_observers.append(observer)

    def remove_insert_observer(self, observer: Callable[[CTuple], None]) -> None:
        """Unregister an insert observer (no-op when never registered)."""
        try:
            self._insert_observers.remove(observer)
        except ValueError:
            pass

    def add_delete_observer(self, observer: Callable[[CTuple], None]) -> None:
        """Register *observer* for tuple deletes (called after :meth:`remove`
        with the removed tuple, whose cell values are still intact)."""
        if observer not in self._delete_observers:
            self._delete_observers.append(observer)

    def remove_delete_observer(self, observer: Callable[[CTuple], None]) -> None:
        """Unregister a delete observer (no-op when never registered)."""
        try:
            self._delete_observers.remove(observer)
        except ValueError:
            pass

    def set_value(self, t: CTuple, attr: str, value: Any) -> bool:
        """Assign ``t[attr] := value`` in place, notifying observers.

        All cell updates made by the cleaning algorithms go through this
        method so that incrementally maintained indexes see every change.
        Returns whether the value actually changed; observers only fire
        on a real change.  Confidence is metadata — set it separately via
        ``t.set_conf`` (indexes never depend on it).
        """
        old = t[attr]
        if old == value:
            return False
        t[attr] = value
        for observer in self._observers:
            observer(t, attr, old, value)
        return True

    # ------------------------------------------------------------------
    # Algebra-flavoured helpers (Fig. 3 of the paper)
    # ------------------------------------------------------------------
    def select(self, predicate: Callable[[CTuple], bool]) -> List[CTuple]:
        """ρ: the tuples satisfying *predicate* (no copy)."""
        return [t for t in self if predicate(t)]

    def project(self, attrs: Sequence[str]) -> Set[Tuple[Any, ...]]:
        """π: the set of distinct value tuples over *attrs*."""
        self.schema.check_attrs(attrs)
        return {t.project(attrs) for t in self}

    def group_by(self, attrs: Sequence[str]) -> Dict[Tuple[Any, ...], List[CTuple]]:
        """Partition tuples by their values on *attrs*.

        This materializes the paper's ``Δ(ȳ) = {t | t ∈ D, t[Y] = ȳ}``
        for every ``ȳ`` at once.
        """
        self.schema.check_attrs(attrs)
        groups: Dict[Tuple[Any, ...], List[CTuple]] = {}
        for t in self:
            groups.setdefault(t.project(attrs), []).append(t)
        return groups

    def active_domain(self, attr: str) -> Set[Any]:
        """``adom(attr)``: the set of values of *attr* occurring in the data."""
        self.schema.check_attrs([attr])
        return {t[attr] for t in self}

    # ------------------------------------------------------------------
    # Copying / comparison
    # ------------------------------------------------------------------
    def clone(self) -> "Relation":
        """A deep copy sharing the schema but owning fresh tuples.

        Tids are preserved so fixes can be traced back to original tuples.
        """
        twin = Relation(self.schema)
        for t in self:
            twin._tuples[t.tid] = t.clone()  # keep identical tids
        twin._next_tid = self._next_tid
        twin._retired = set(self._retired)
        return twin

    def restrict(self, tids: Iterable[int], copy: bool = True) -> "Relation":
        """A clone containing only the tuples named by *tids*.

        Tids, tid bookkeeping (``_next_tid``, retired tids) and relative
        insertion order are preserved, so cleaning a restriction produces
        fixes addressed exactly like a clean of the full relation — the
        shard construction primitive of
        :mod:`repro.pipeline.sharding`.  Unknown tids raise
        :class:`~repro.exceptions.DataError`.

        ``copy=False`` shares the tuple objects instead of cloning them —
        a zero-copy *view* for consumers that only read the restriction
        (or clone it themselves, as ``CleaningSession.clean`` does):
        mutating a shared tuple mutates both relations.
        """
        wanted = set(tids)
        missing = wanted - self._tuples.keys()
        if missing:
            raise DataError(
                f"relation {self.schema.name!r} has no tuple "
                f"#{min(missing)} to restrict to"
            )
        twin = Relation(self.schema)
        for tid, t in self._tuples.items():
            if tid in wanted:
                twin._tuples[tid] = t.clone() if copy else t
        twin._next_tid = self._next_tid
        twin._retired = set(self._retired)
        return twin

    def diff(self, other: "Relation") -> List[Tuple[int, str, Any, Any]]:
        """Cell-level difference against *other* (matched by tid).

        Returns a list of ``(tid, attr, self_value, other_value)`` entries
        for cells where the two relations disagree.  Tuples present in only
        one relation are ignored (cleaning never inserts or deletes rows).
        """
        if self.schema != other.schema:
            raise DataError("cannot diff relations with different schemas")
        out: List[Tuple[int, str, Any, Any]] = []
        for tid, mine in self._tuples.items():
            if tid not in other._tuples:
                continue
            theirs = other._tuples[tid]
            for attr in self.schema.names:
                if mine[attr] != theirs[attr]:
                    out.append((tid, attr, mine[attr], theirs[attr]))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.schema.name!r}, {len(self)} tuples)"

    # ------------------------------------------------------------------
    # Pretty-printing (used by examples)
    # ------------------------------------------------------------------
    def to_text(self, attrs: Optional[Sequence[str]] = None, limit: int = 20) -> str:
        """Render the relation as an aligned text table (first *limit* rows)."""
        names = list(attrs) if attrs is not None else list(self.schema.names)
        rows = [[str(t[a]) for a in names] for t in list(self)[:limit]]
        header = list(names)
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
            for i in range(len(names))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        if len(self) > limit:
            lines.append(f"... ({len(self) - limit} more rows)")
        return "\n".join(lines)
