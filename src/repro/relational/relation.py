"""Relation instances: ordered collections of :class:`CTuple` rows.

A :class:`Relation` owns its tuples and assigns tuple identifiers (tids).
Cleaning algorithms operate on a *clone* of the dirty relation, mutate
tuples in place and record the edits in a fix log; the original relation is
never modified.

Cell mutations that go through :meth:`Relation.set_value` are broadcast to
registered observers, which is how incremental indexes (the violation
index, the entropy index) stay coherent with in-place :class:`CTuple`
mutation.  Tuple inserts (:meth:`Relation.add`) and deletes
(:meth:`Relation.remove`) are broadcast the same way, so a
:class:`~repro.pipeline.changeset.Changeset` applied to an observed
relation keeps every derived structure coherent without rebuilds.
Observers are *not* carried over by :meth:`clone` — each clone starts
with a clean observer list.

Relations are **columnar-backed by default** (see
:mod:`repro.relational.columns`): cells live in per-attribute interned
ref columns and resident tuples are :class:`~repro.relational.columns.ColumnTuple`
row-views, which keeps the whole tuple API intact while exposing bulk
ref-level accessors (:meth:`Relation.column`, :meth:`Relation.rows_where`,
:meth:`Relation.group_rows_by`, :meth:`Relation.project_refs`) to the
vectorized check engine.  Pass ``columnar=False`` (or flip the
``REPRO_COLUMNAR`` env default) to get the original dict-of-CTuple
backing.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.exceptions import DataError, SchemaError
from repro.relational import columns as _columns
from repro.relational.attribute import NULL
from repro.relational.columns import ColumnStore, ColumnTuple, ValueTable
from repro.relational.schema import Schema
from repro.relational.tuples import CTuple


class Relation:
    """An instance of a :class:`~repro.relational.schema.Schema`.

    Parameters
    ----------
    schema:
        Relation schema.
    tuples:
        Optional initial tuples; tids are (re-)assigned on insertion when
        absent or conflicting.
    columnar:
        Backing store: ``True`` for interned ref columns (resident tuples
        are row-views), ``False`` for the original dict-of-CTuple layout,
        ``None`` (default) for the process-wide default
        (:func:`repro.relational.columns.default_columnar`).

    Notes
    -----
    Tuples are stored in insertion order, addressable by tid in O(1).
    """

    __slots__ = (
        "schema",
        "_tuples",
        "_next_tid",
        "_retired",
        "_observers",
        "_insert_observers",
        "_delete_observers",
        "_columns",
    )

    def __init__(
        self,
        schema: Schema,
        tuples: Iterable[CTuple] = (),
        columnar: Optional[bool] = None,
    ):
        self.schema = schema
        self._tuples: Dict[int, CTuple] = {}
        self._next_tid = 0
        self._retired: Set[int] = set()
        self._observers: List[Callable[[CTuple, str, Any, Any], None]] = []
        self._insert_observers: List[Callable[[CTuple], None]] = []
        self._delete_observers: List[Callable[[CTuple], None]] = []
        if columnar is None:
            columnar = _columns.default_columnar()
        self._columns: Optional[ColumnStore] = (
            ColumnStore(schema) if columnar else None
        )
        for t in tuples:
            self.add(t)

    @property
    def column_store(self) -> Optional[ColumnStore]:
        """The columnar backing store, or ``None`` for dict-backed relations."""
        return self._columns

    @property
    def value_table(self) -> Optional[ValueTable]:
        """The interning table cells reference (columnar relations only)."""
        return self._columns.table if self._columns is not None else None

    # ------------------------------------------------------------------
    # Pickling (process-pool sharding ships relations across workers)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        """Pickle tuples and tid bookkeeping; observers are process-local
        callables (often closures over index state) and are dropped, the
        same way :meth:`clone` starts with a clean observer list.

        Column-backed relations pickle their rows as detached plain
        tuples (refs are process-local), keeping the state shape — and
        therefore the wire/snapshot formats built on it — identical for
        both backends.
        """
        tuples = list(self._tuples.values())
        if self._columns is not None:
            tuples = [t.clone() for t in tuples]  # detach row-views
        return {
            "schema": self.schema,
            "tuples": tuples,
            "next_tid": self._next_tid,
            "retired": sorted(self._retired),
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.schema = state["schema"]
        self._observers = []
        self._insert_observers = []
        self._delete_observers = []
        self._tuples = {}
        self._columns = (
            ColumnStore(self.schema) if _columns.default_columnar() else None
        )
        store = self._columns
        if store is None:
            self._tuples = {t.tid: t for t in state["tuples"]}
        else:
            names = self.schema.names
            for t in state["tuples"]:
                values = t._values
                conf = t._conf
                row = store.append_values(
                    t.tid,
                    [values[n] for n in names],
                    [conf[n] for n in names],
                )
                self._tuples[t.tid] = ColumnTuple.make(store, row, t.tid)
        self._next_tid = state["next_tid"]
        self._retired = set(state["retired"])

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(
        cls,
        schema: Schema,
        rows: Iterable[Mapping[str, Any]],
        confidences: Optional[Iterable[Mapping[str, Optional[float]]]] = None,
    ) -> "Relation":
        """Build a relation from dict rows (and optional confidence dicts)."""
        relation = cls(schema)
        if confidences is None:
            for row in rows:
                relation.add_row(row)
        else:
            conf_list = list(confidences)
            row_list = list(rows)
            if len(conf_list) != len(row_list):
                raise DataError("rows and confidences must have equal length")
            for row, conf in zip(row_list, conf_list):
                relation.add_row(row, conf)
        return relation

    def _absorb(self, t: CTuple) -> CTuple:
        """Make *t* resident: dict backends keep the object itself;
        columnar backends copy its cells into the column store (by ref
        when *t* is already a row-view over the same value table) and
        return a fresh row-view carrying ``t.tid``."""
        store = self._columns
        if store is None:
            return t
        if isinstance(t, ColumnTuple):
            row = store.adopt_row(t.tid, t._store, t._row)
        else:
            names = self.schema.names
            values = t._values
            conf = t._conf
            row = store.append_values(
                t.tid, [values[n] for n in names], [conf[n] for n in names]
            )
        return ColumnTuple.make(store, row, t.tid)

    def _install(self, t: CTuple) -> CTuple:
        """Install *t* as the resident tuple for its (already-assigned)
        tid without firing observers or touching tid bookkeeping — the
        shard-merge primitive (:mod:`repro.pipeline.sharding` swaps
        repaired tuples into ``working`` wholesale).  Any current
        resident for the tid is replaced; for columnar relations the
        replacement gets a fresh row, so shared-store views of the old
        row are unaffected (same semantics as rebinding the dict slot).
        """
        resident = self._absorb(t)
        self._tuples[resident.tid] = resident
        return resident

    def add(self, t: CTuple) -> CTuple:
        """Insert tuple *t*, assigning a fresh tid when needed.

        A fresh tid is assigned when ``t.tid`` is ``None``, collides with
        a live tuple, or names a tid that was previously :meth:`remove`\\ d
        — removed tids are *never* reused, so session state keyed by a
        dead tid (per-cell cost maps, fix-log entries) can never alias a
        later insert.  Explicit tids that were never assigned (gaps below
        ``_next_tid``) are honoured.

        Returns the resident tuple: the same object for dict-backed
        relations, a row-view over the column store otherwise (the input
        handle's ``tid`` is updated either way, but only the returned
        tuple addresses the resident row).
        """
        if t.schema != self.schema:
            raise DataError(
                f"tuple of schema {t.schema.name!r} cannot join relation "
                f"of schema {self.schema.name!r}"
            )
        if t.tid is None or t.tid in self._tuples or t.tid in self._retired:
            t.tid = self._next_tid
        resident = self._absorb(t)
        self._tuples[resident.tid] = resident
        self._next_tid = max(self._next_tid, resident.tid) + 1
        for observer in self._insert_observers:
            observer(resident)
        return resident

    def add_row(
        self,
        values: Mapping[str, Any],
        confidences: Optional[Mapping[str, Optional[float]]] = None,
    ) -> CTuple:
        """Convenience: build and insert a tuple from dicts.

        Columnar relations skip the intermediate :class:`CTuple` and
        write straight into the columns (same validation, same errors).
        """
        store = self._columns
        if store is None:
            return self.add(CTuple(self.schema, values, confidences))
        schema = self.schema
        for extra in values:
            if extra not in schema:
                raise SchemaError(
                    f"value for unknown attribute {extra!r} of schema {schema.name!r}"
                )
        row_values = [values.get(name, NULL) for name in schema.names]
        if confidences:
            for name, conf in confidences.items():
                if name not in schema:
                    raise SchemaError(
                        f"confidence for unknown attribute {name!r} "
                        f"of schema {schema.name!r}"
                    )
                CTuple._check_conf(conf)
            row_confs = [confidences.get(name) for name in schema.names]
        else:
            row_confs = [None] * len(schema.names)
        return self.append_row_values(row_values, row_confs)

    def append_row_values(
        self,
        values: Sequence[Any],
        confs: Optional[Sequence[Optional[float]]] = None,
    ) -> CTuple:
        """Fast-path insert of one row given schema-order value (and
        confidence) sequences — the bulk-load primitive behind CSV reads
        and the benchmarks.  Values are trusted (no per-attribute
        validation beyond the length check); the fresh tid is assigned
        as usual and insert observers fire.
        """
        names = self.schema.names
        if len(values) != len(names):
            raise DataError(
                f"expected {len(names)} values for schema "
                f"{self.schema.name!r}, got {len(values)}"
            )
        if confs is None:
            confs = [None] * len(names)
        elif len(confs) != len(names):
            raise DataError(
                f"expected {len(names)} confidences for schema "
                f"{self.schema.name!r}, got {len(confs)}"
            )
        tid = self._next_tid
        store = self._columns
        if store is None:
            resident = CTuple.__new__(CTuple)
            resident.schema = self.schema
            resident.tid = tid
            resident._values = dict(zip(names, values))
            resident._conf = dict(zip(names, confs))
        else:
            row = store.append_values(tid, values, confs)
            resident = ColumnTuple.make(store, row, tid)
        self._tuples[tid] = resident
        self._next_tid = tid + 1
        for observer in self._insert_observers:
            observer(resident)
        return resident

    def remove(self, tid: int) -> CTuple:
        """Delete the tuple with identifier *tid*, notifying observers.

        Tids are never reused: ``_next_tid`` stays monotonic *and* the
        removed tid is retired, so a later :meth:`add` — even one passing
        the same tid explicitly — cannot alias the dead tuple (it gets a
        fresh tid instead).  Returns the removed tuple (its values stay
        intact, which delete observers rely on to locate the tuple in
        their structures).
        """
        try:
            t = self._tuples.pop(tid)
        except KeyError:
            raise DataError(f"relation {self.schema.name!r} has no tuple #{tid}") from None
        self._retired.add(tid)
        store = self._columns
        if store is not None and not store.shared:
            # Tombstone the row, then re-home the popped view onto a
            # private single-row store: a later compaction rewrites this
            # relation's columns in place, so a handle still reading the
            # parent store would silently pick up another tuple's cells.
            # Shared stores (zero-copy restrict views) are left alone:
            # killing the row would tombstone it for the other owner too,
            # which only *reads* the restriction — removing from a view
            # must never mutate the parent's columns.
            store.kill(tid)
            t = self._detach_view(t)
            if store.should_compact():
                self._compact_columns()
        for observer in self._delete_observers:
            observer(t)
        return t

    def _detach_view(self, t: CTuple) -> CTuple:
        """Re-home a popped row-view onto a private single-row store so
        its cells survive compaction of this relation's columns."""
        if not isinstance(t, ColumnTuple):
            return t
        solo = ColumnStore(self.schema, t._store.table)
        t._row = solo.adopt_row(t.tid, t._store, t._row)
        t._store = solo
        return t

    def _compact_columns(self) -> None:
        """Compact the backing store and re-point resident row-views."""
        remap = self._columns.compact()
        for t in self._tuples.values():
            t._row = remap[t._row]

    def compact(self, force: bool = False) -> bool:
        """Reclaim tombstoned rows in the backing columns.

        Returns whether a compaction ran.  No-op for dict-backed
        relations, for shared stores (zero-copy views — neither owner
        may move the other's rows), and — unless *force* — below the
        auto-trigger thresholds (:data:`repro.relational.columns.COMPACT_MIN_ROWS`
        rows, live ratio under
        :data:`repro.relational.columns.COMPACT_LIVE_RATIO`).  Tids,
        values, confidences and iteration order are all unchanged; only
        physical row indexes move, invisibly behind the tuple API.
        """
        store = self._columns
        if store is None or store.shared:
            return False
        if not force and not store.should_compact():
            return False
        self._compact_columns()
        return True

    def tid_retired(self, tid: int) -> bool:
        """Whether *tid* belonged to a tuple that was removed (such tids
        are never assigned again)."""
        return tid in self._retired

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def by_tid(self, tid: int) -> CTuple:
        """Return the tuple with identifier *tid*."""
        try:
            return self._tuples[tid]
        except KeyError:
            raise DataError(f"relation {self.schema.name!r} has no tuple #{tid}") from None

    def has_tid(self, tid: int) -> bool:
        """Whether a tuple with identifier *tid* is currently present."""
        return tid in self._tuples

    def tids(self) -> Tuple[int, ...]:
        """All tuple identifiers, in insertion order."""
        return tuple(self._tuples.keys())

    def tuples(self) -> List[CTuple]:
        """All tuples, in insertion order (a fresh list)."""
        return list(self._tuples.values())

    def __iter__(self) -> Iterator[CTuple]:
        return iter(self._tuples.values())

    def __len__(self) -> int:
        return len(self._tuples)

    def __contains__(self, t: object) -> bool:
        if isinstance(t, CTuple):
            return t.tid in self._tuples and self._tuples[t.tid] is t
        return False

    # ------------------------------------------------------------------
    # Mutation with change notification
    # ------------------------------------------------------------------
    def add_observer(self, observer: Callable[[CTuple, str, Any, Any], None]) -> None:
        """Register *observer* for cell-change notifications.

        Observers are callables ``(t, attr, old_value, new_value)`` invoked
        *after* the tuple has been mutated by :meth:`set_value`.  They must
        not mutate the relation re-entrantly.
        """
        if observer not in self._observers:
            self._observers.append(observer)

    def remove_observer(self, observer: Callable[[CTuple, str, Any, Any], None]) -> None:
        """Unregister *observer* (a no-op when it was never registered)."""
        try:
            self._observers.remove(observer)
        except ValueError:
            pass

    def add_insert_observer(self, observer: Callable[[CTuple], None]) -> None:
        """Register *observer* for tuple inserts (called after :meth:`add`)."""
        if observer not in self._insert_observers:
            self._insert_observers.append(observer)

    def remove_insert_observer(self, observer: Callable[[CTuple], None]) -> None:
        """Unregister an insert observer (no-op when never registered)."""
        try:
            self._insert_observers.remove(observer)
        except ValueError:
            pass

    def add_delete_observer(self, observer: Callable[[CTuple], None]) -> None:
        """Register *observer* for tuple deletes (called after :meth:`remove`
        with the removed tuple, whose cell values are still intact)."""
        if observer not in self._delete_observers:
            self._delete_observers.append(observer)

    def remove_delete_observer(self, observer: Callable[[CTuple], None]) -> None:
        """Unregister a delete observer (no-op when never registered)."""
        try:
            self._delete_observers.remove(observer)
        except ValueError:
            pass

    def set_value(self, t: CTuple, attr: str, value: Any) -> bool:
        """Assign ``t[attr] := value`` in place, notifying observers.

        All cell updates made by the cleaning algorithms go through this
        method so that incrementally maintained indexes see every change.
        Returns whether the value actually changed; observers only fire
        on a real change.  Confidence is metadata — set it separately via
        ``t.set_conf`` (indexes never depend on it).
        """
        old = t[attr]
        if old == value:
            return False
        t[attr] = value
        for observer in self._observers:
            observer(t, attr, old, value)
        return True

    # ------------------------------------------------------------------
    # Algebra-flavoured helpers (Fig. 3 of the paper)
    # ------------------------------------------------------------------
    def select(self, predicate: Callable[[CTuple], bool]) -> List[CTuple]:
        """ρ: the tuples satisfying *predicate* (no copy)."""
        return [t for t in self if predicate(t)]

    def _live_rows(self) -> Tuple[List[int], Optional[List[int]]]:
        """``(tids, rows)`` for columnar scans.

        ``rows is None`` signals the contiguous fast path: the store is
        fully live (no tombstones) and this relation owns every row, so
        column ``.data`` arrays align 1:1 with ``tids`` and can be zipped
        at C speed.  Otherwise ``rows[i]`` is the store row of
        ``tids[i]`` (shared stores, tombstoned rows).  Correctness never
        depends on the dead bitmap — scans are always driven by this
        relation's resident tuples.
        """
        store = self._columns
        tids = list(self._tuples.keys())
        if store.n_dead == 0 and len(store.row_tids) == len(tids):
            return tids, None
        return tids, [t._row for t in self._tuples.values()]

    def _value_columns(self, attrs: Sequence[str]) -> List[Sequence[int]]:
        """The raw ref arrays of *attrs* (columnar relations only)."""
        store = self._columns
        index_of = store.index_of
        return [store.values[index_of[a]].data for a in attrs]

    def project(self, attrs: Sequence[str]) -> Set[Tuple[Any, ...]]:
        """π: the set of distinct value tuples over *attrs*."""
        self.schema.check_attrs(attrs)
        store = self._columns
        if store is None:
            return {t.project(attrs) for t in self}
        # Dedup on ref tuples (int compares), materialize values once per
        # distinct ref combination.
        values = store.table.values
        cols = self._value_columns(attrs)
        tids, rows = self._live_rows()
        out: Set[Tuple[Any, ...]] = set()
        seen: Set[Tuple[int, ...]] = set()
        if rows is None:
            for refs in zip(*cols):
                if refs not in seen:
                    seen.add(refs)
                    out.add(tuple(values[r] for r in refs))
        else:
            for row in rows:
                refs = tuple(col[row] for col in cols)
                if refs not in seen:
                    seen.add(refs)
                    out.add(tuple(values[r] for r in refs))
        return out

    def group_by(self, attrs: Sequence[str]) -> Dict[Tuple[Any, ...], List[CTuple]]:
        """Partition tuples by their values on *attrs*.

        This materializes the paper's ``Δ(ȳ) = {t | t ∈ D, t[Y] = ȳ}``
        for every ``ȳ`` at once.
        """
        self.schema.check_attrs(attrs)
        store = self._columns
        groups: Dict[Tuple[Any, ...], List[CTuple]] = {}
        if store is None:
            for t in self:
                groups.setdefault(t.project(attrs), []).append(t)
            return groups
        values = store.table.values
        cols = self._value_columns(attrs)
        residents = list(self._tuples.values())
        tids, rows = self._live_rows()
        # Ref-tuple -> member list of its (==)-keyed group, so the value
        # tuple is materialized once per distinct ref combination while
        # group identity keeps dict (==) semantics.
        by_refs: Dict[Tuple[int, ...], List[CTuple]] = {}
        if rows is None:
            packed = zip(residents, *cols)
        else:
            packed = (
                (t, *(col[row] for col in cols))
                for t, row in zip(residents, rows)
            )
        for item in packed:
            t = item[0]
            refs = item[1:]
            members = by_refs.get(refs)
            if members is None:
                key = tuple(values[r] for r in refs)
                members = by_refs[refs] = groups.setdefault(key, [])
            members.append(t)
        return groups

    def active_domain(self, attr: str) -> Set[Any]:
        """``adom(attr)``: the set of values of *attr* occurring in the data."""
        self.schema.check_attrs([attr])
        store = self._columns
        if store is None:
            return {t[attr] for t in self}
        values = store.table.values
        data = store.values[store.index_of[attr]].data
        tids, rows = self._live_rows()
        out: Set[Any] = set()
        seen: Set[int] = set()
        if rows is None:
            for ref in data:
                if ref not in seen:
                    seen.add(ref)
                    out.add(values[ref])
        else:
            for row in rows:
                ref = data[row]
                if ref not in seen:
                    seen.add(ref)
                    out.add(values[ref])
        return out

    # ------------------------------------------------------------------
    # Bulk ref-level accessors (columnar backing store)
    # ------------------------------------------------------------------
    def _require_columns(self) -> ColumnStore:
        if self._columns is None:
            raise DataError(
                f"relation {self.schema.name!r} is dict-backed; "
                "ref-level accessors need a columnar relation"
            )
        return self._columns

    def column(self, attr: str) -> List[int]:
        """The interned value refs of *attr*, aligned with :meth:`tids`."""
        self.schema.check_attrs([attr])
        store = self._require_columns()
        data = store.values[store.index_of[attr]].data
        tids, rows = self._live_rows()
        if rows is None:
            return list(data)
        return [data[row] for row in rows]

    def project_refs(self, attrs: Sequence[str]) -> List[Tuple[int, ...]]:
        """Ref tuples over *attrs*, aligned with :meth:`tids`."""
        self.schema.check_attrs(attrs)
        self._require_columns()
        cols = self._value_columns(attrs)
        tids, rows = self._live_rows()
        if rows is None:
            return list(zip(*cols)) if cols else [() for _ in tids]
        return [tuple(col[row] for col in cols) for row in rows]

    def rows_where(self, attr: str, value: Any) -> List[CTuple]:
        """The resident tuples with ``t[attr] == value`` (insertion order).

        Columnar relations resolve *value* to its canonical ref (without
        interning it) and scan one int column; equality semantics are
        identical to the per-tuple ``==`` scan.
        """
        self.schema.check_attrs([attr])
        store = self._columns
        if store is None:
            return [t for t in self if t[attr] == value]
        table = store.table
        try:
            wanted = table.find_canon(value)
        except TypeError:  # unhashable probe: no ref shortcut possible
            return [t for t in self if t[attr] == value]
        if wanted is None:
            return []
        canon = table.canon
        data = store.values[store.index_of[attr]].data
        residents = list(self._tuples.values())
        tids, rows = self._live_rows()
        if rows is None:
            return [
                t for t, ref in zip(residents, data) if canon[ref] == wanted
            ]
        return [
            t for t, row in zip(residents, rows) if canon[data[row]] == wanted
        ]

    def group_rows_by(self, attrs: Sequence[str]) -> Dict[Tuple[Any, ...], List[int]]:
        """Member tids per distinct value tuple over *attrs* (both in
        first-encounter order) — :meth:`group_by` at the tid level."""
        self.schema.check_attrs(attrs)
        store = self._columns
        groups: Dict[Tuple[Any, ...], List[int]] = {}
        if store is None:
            for t in self:
                groups.setdefault(t.project(attrs), []).append(t.tid)
            return groups
        values = store.table.values
        cols = self._value_columns(attrs)
        tids, rows = self._live_rows()
        by_refs: Dict[Tuple[int, ...], List[int]] = {}
        if rows is None:
            packed = zip(tids, *cols)
        else:
            packed = (
                (tid, *(col[row] for col in cols))
                for tid, row in zip(tids, rows)
            )
        for item in packed:
            tid = item[0]
            refs = item[1:]
            members = by_refs.get(refs)
            if members is None:
                key = tuple(values[r] for r in refs)
                members = by_refs[refs] = groups.setdefault(key, [])
            members.append(tid)
        return groups

    def value_refs(
        self, attr: str, tids: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Interned value refs of *attr* — aligned with :meth:`tids` when
        *tids* is ``None``, else with the given tid sequence.

        Explicit tids resolve rows through the resident tuples (not the
        store's ``row_of`` map), so shared-store views and post-install
        duplicates can never leak a stale row.
        """
        self.schema.check_attrs([attr])
        store = self._require_columns()
        data = store.values[store.index_of[attr]].data
        if tids is None:
            _, rows = self._live_rows()
            if rows is None:
                return list(data)
            return [data[row] for row in rows]
        tuples = self._tuples
        return [data[tuples[tid]._row] for tid in tids]

    def conf_refs(
        self, attr: str, tids: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Interned confidence refs of *attr* (same alignment contract
        as :meth:`value_refs`)."""
        self.schema.check_attrs([attr])
        store = self._require_columns()
        data = store.confs[store.index_of[attr]].data
        if tids is None:
            _, rows = self._live_rows()
            if rows is None:
                return list(data)
            return [data[row] for row in rows]
        tuples = self._tuples
        return [data[tuples[tid]._row] for tid in tids]

    def canon_refs(
        self, attr: str, tids: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Canonical value refs of *attr* — canon equality *is* ``==``
        value equality (invariant 19), so two cells compare equal exactly
        when their canon refs are the same int."""
        store = self._require_columns()
        canon = store.table.canon
        return [canon[r] for r in self.value_refs(attr, tids)]

    # ------------------------------------------------------------------
    # Copying / comparison
    # ------------------------------------------------------------------
    def clone(self) -> "Relation":
        """A deep copy sharing the schema but owning fresh tuples.

        Tids are preserved so fixes can be traced back to original tuples.
        """
        columnar = self._columns is not None
        twin = Relation(self.schema, columnar=columnar)
        if columnar:
            # Compact rebuild: copy refs row by row (values are shared
            # through the process-wide table, never re-interned) and hand
            # each tid a fresh row-view.
            source = self._columns
            store = twin._columns
            make = ColumnTuple.make
            for tid, t in self._tuples.items():
                row = store.adopt_row(tid, source, t._row)
                twin._tuples[tid] = make(store, row, tid)
        else:
            for t in self:
                twin._tuples[t.tid] = t.clone()  # keep identical tids
        twin._next_tid = self._next_tid
        twin._retired = set(self._retired)
        return twin

    def restrict(self, tids: Iterable[int], copy: bool = True) -> "Relation":
        """A clone containing only the tuples named by *tids*.

        Tids, tid bookkeeping (``_next_tid``, retired tids) and relative
        insertion order are preserved, so cleaning a restriction produces
        fixes addressed exactly like a clean of the full relation — the
        shard construction primitive of
        :mod:`repro.pipeline.sharding`.  Unknown tids raise
        :class:`~repro.exceptions.DataError`.

        ``copy=False`` shares the tuple objects instead of cloning them —
        a zero-copy *view* for consumers that only read the restriction
        (or clone it themselves, as ``CleaningSession.clean`` does):
        mutating a shared tuple mutates both relations.  For columnar
        relations this shares the backing columns too — the twin holds
        the same store and the same row-views, no refs are copied.
        """
        wanted = set(tids)
        missing = wanted - self._tuples.keys()
        if missing:
            raise DataError(
                f"relation {self.schema.name!r} has no tuple "
                f"#{min(missing)} to restrict to"
            )
        columnar = self._columns is not None
        twin = Relation(self.schema, columnar=False)
        if not columnar:
            for tid, t in self._tuples.items():
                if tid in wanted:
                    twin._tuples[tid] = t.clone() if copy else t
        elif copy:
            source = self._columns
            store = twin._columns = ColumnStore(self.schema, source.table)
            make = ColumnTuple.make
            for tid, t in self._tuples.items():
                if tid in wanted:
                    row = store.adopt_row(tid, source, t._row)
                    twin._tuples[tid] = make(store, row, tid)
        else:
            twin._columns = self._columns  # shared columns, shared views
            # Mark the store shared: from now on neither owner may
            # tombstone or compact rows the other might still hold.
            self._columns.shared = True
            for tid, t in self._tuples.items():
                if tid in wanted:
                    twin._tuples[tid] = t
        twin._next_tid = self._next_tid
        twin._retired = set(self._retired)
        return twin

    def diff(self, other: "Relation") -> List[Tuple[int, str, Any, Any]]:
        """Cell-level difference against *other* (matched by tid).

        Returns a list of ``(tid, attr, self_value, other_value)`` entries
        for cells where the two relations disagree.  Tuples present in only
        one relation are ignored (cleaning never inserts or deletes rows).
        """
        if self.schema != other.schema:
            raise DataError("cannot diff relations with different schemas")
        out: List[Tuple[int, str, Any, Any]] = []
        for tid, mine in self._tuples.items():
            if tid not in other._tuples:
                continue
            theirs = other._tuples[tid]
            for attr in self.schema.names:
                if mine[attr] != theirs[attr]:
                    out.append((tid, attr, mine[attr], theirs[attr]))
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.schema.name!r}, {len(self)} tuples)"

    # ------------------------------------------------------------------
    # Pretty-printing (used by examples)
    # ------------------------------------------------------------------
    def to_text(self, attrs: Optional[Sequence[str]] = None, limit: int = 20) -> str:
        """Render the relation as an aligned text table (first *limit* rows)."""
        names = list(attrs) if attrs is not None else list(self.schema.names)
        rows = [[str(t[a]) for a in names] for t in list(self)[:limit]]
        header = list(names)
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
            for i in range(len(names))
        ]
        lines = [
            "  ".join(h.ljust(w) for h, w in zip(header, widths)),
            "  ".join("-" * w for w in widths),
        ]
        for r in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
        if len(self) > limit:
            lines.append(f"... ({len(self) - limit} more rows)")
        return "\n".join(lines)
