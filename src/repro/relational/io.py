"""CSV import/export for relations.

Confidences are serialized as a parallel ``<attr>.cf`` column when
requested, mirroring the ``cf`` rows under each tuple in Fig. 1 of the
paper.  The empty string round-trips to :data:`NULL`, and a missing or empty
confidence cell round-trips to ``None`` (confidence unavailable).
"""

from __future__ import annotations

import csv
import io as _io
from pathlib import Path
from typing import Optional, Sequence, TextIO, Union

from repro.exceptions import DataError
from repro.relational.attribute import NULL, is_null
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuples import CTuple

_CF_SUFFIX = ".cf"


def write_csv(
    relation: Relation,
    target: Union[str, Path, TextIO],
    include_confidence: bool = True,
) -> None:
    """Write *relation* to CSV.

    Parameters
    ----------
    relation:
        The relation to serialize.
    target:
        File path or open text handle.
    include_confidence:
        When true, every attribute column ``A`` is followed by ``A.cf``.
    """
    close = False
    if isinstance(target, (str, Path)):
        handle: TextIO = open(target, "w", newline="", encoding="utf-8")
        close = True
    else:
        handle = target
    try:
        writer = csv.writer(handle)
        header = []
        for name in relation.schema.names:
            header.append(name)
            if include_confidence:
                header.append(name + _CF_SUFFIX)
        writer.writerow(header)
        for t in relation:
            row = []
            for name in relation.schema.names:
                value = t[name]
                row.append("" if is_null(value) else str(value))
                if include_confidence:
                    conf = t.conf(name)
                    row.append("" if conf is None else repr(conf))
            writer.writerow(row)
    finally:
        if close:
            handle.close()


def read_csv(
    schema: Schema,
    source: Union[str, Path, TextIO],
) -> Relation:
    """Read a relation previously produced by :func:`write_csv`.

    Columns named ``A.cf`` are interpreted as confidences for attribute
    ``A``; other columns must match schema attributes exactly.
    """
    close = False
    if isinstance(source, (str, Path)):
        handle: TextIO = open(source, "r", newline="", encoding="utf-8")
        close = True
    else:
        handle = source
    try:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError("CSV source is empty (no header row)") from None
        value_cols = {}
        conf_cols = {}
        for i, col in enumerate(header):
            if col.endswith(_CF_SUFFIX):
                attr = col[: -len(_CF_SUFFIX)]
                if attr not in schema:
                    raise DataError(f"CSV confidence column for unknown attribute {attr!r}")
                conf_cols[attr] = i
            else:
                if col not in schema:
                    raise DataError(f"CSV column {col!r} not in schema {schema.name!r}")
                value_cols[col] = i
        missing = [n for n in schema.names if n not in value_cols]
        if missing:
            raise DataError(f"CSV is missing columns for attributes {missing}")
        relation = Relation(schema)
        # Schema-order column positions once, then one list per row into
        # the bulk-load fast path (columnar relations intern straight
        # into their ref columns; no intermediate dicts or CTuples).
        positions = [value_cols[name] for name in schema.names]
        conf_positions = [conf_cols.get(name) for name in schema.names]
        check_conf = CTuple._check_conf
        for row in reader:
            width = len(row)
            values = [
                NULL if i >= width or row[i] == "" else row[i]
                for i in positions
            ]
            confs = [
                None if i is None or i >= width or row[i] == "" else float(row[i])
                for i in conf_positions
            ]
            if conf_cols:
                for conf in confs:
                    check_conf(conf)
            relation.append_row_values(values, confs)
        return relation
    finally:
        if close:
            handle.close()


def to_csv_string(relation: Relation, include_confidence: bool = True) -> str:
    """Serialize *relation* to a CSV string (round-trips via :func:`from_csv_string`)."""
    buffer = _io.StringIO()
    write_csv(relation, buffer, include_confidence=include_confidence)
    return buffer.getvalue()


def from_csv_string(schema: Schema, text: str) -> Relation:
    """Parse a relation from a CSV string produced by :func:`to_csv_string`."""
    return read_csv(schema, _io.StringIO(text))
