"""Attributes, domains and the distinguished ``NULL`` value.

The relational substrate is deliberately small: the paper's algorithms need
named, optionally typed attributes, per-attribute finite domains for the
static analyses (Theorems 4.1/4.2 enumerate active domains), and a SQL-style
``null`` with the *simple semantics* adopted in Section 7 of the paper
(equality involving ``null`` evaluates to true in hRepair, while CFD pattern
matching ``≍`` is false on ``null``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.exceptions import SchemaError


class NullType:
    """Singleton type of the SQL-style ``NULL`` marker.

    ``NULL`` compares equal only to itself under Python ``==`` (identity);
    the *simple SQL semantics* used by hRepair — where ``t1[X] = t2[X]`` is
    true if either side is ``null`` — is implemented explicitly by
    :func:`repro.core.hrepair.null_eq`, not by overloading ``__eq__`` here.
    That keeps ordinary dictionary/set behaviour predictable.
    """

    _instance: Optional["NullType"] = None

    def __new__(cls) -> "NullType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "NULL"

    def __bool__(self) -> bool:
        return False

    def __hash__(self) -> int:
        return hash("repro.NULL")

    def __deepcopy__(self, memo: dict) -> "NullType":
        return self

    def __copy__(self) -> "NullType":
        return self


#: The distinguished null marker used across the library.
NULL = NullType()


def is_null(value: Any) -> bool:
    """Return ``True`` iff *value* is the distinguished :data:`NULL` marker."""
    return value is NULL


@dataclass(frozen=True)
class Domain:
    """A (possibly finite) attribute domain.

    Parameters
    ----------
    name:
        Human-readable name, e.g. ``"string"`` or ``"bool"``.
    values:
        When not ``None``, the finite set of admissible values.  Finite
        domains matter for the consistency/implication small-model searches,
        which enumerate ``adom(A)`` plus "at most one extra distinct value
        drawn from dom(A), if such a value exists" (proof of Theorem 4.1).
    """

    name: str = "string"
    values: Optional[frozenset] = None

    @staticmethod
    def finite(values: Iterable, name: str = "finite") -> "Domain":
        """Build a finite domain from an iterable of values."""
        return Domain(name=name, values=frozenset(values))

    @property
    def is_finite(self) -> bool:
        """Whether the domain has a finite, explicitly listed value set."""
        return self.values is not None

    def __contains__(self, value: Any) -> bool:
        if self.values is None:
            return True
        return value in self.values

    def fresh_value(self, used: Iterable) -> Optional[Any]:
        """Return a value of this domain outside *used*, or ``None``.

        For an infinite domain a synthetic fresh string is produced.  For a
        finite domain the first unused value (in sorted order, for
        determinism) is returned, or ``None`` when the domain is exhausted —
        exactly the "at most an extra distinct value ... if such a value
        exists" clause in the proof of Theorem 4.1.
        """
        used_set = set(used)
        if self.values is None:
            candidate = "⁑fresh"
            index = 0
            while f"{candidate}{index}" in used_set:
                index += 1
            return f"{candidate}{index}"
        for value in sorted(self.values, key=repr):
            if value not in used_set:
                return value
        return None


#: Convenient shared domains.
STRING = Domain("string")
BOOL = Domain.finite({True, False}, name="bool")


@dataclass(frozen=True)
class Attribute:
    """A named attribute with an optional domain.

    Attributes are value objects: two attributes are interchangeable when
    their name and domain coincide.  Schemas index them by name, so names
    must be unique within a schema.
    """

    name: str
    domain: Domain = field(default=STRING)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name
