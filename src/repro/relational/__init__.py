"""Relational substrate: schemas, confidence-carrying tuples, relations.

This package provides the minimal relational machinery the paper's
algorithms run on: named schemas, tuples with per-attribute confidence
(the ``cf`` annotations of Fig. 1), relation instances with the
selection/projection/grouping helpers of Fig. 3, a SQL-style ``NULL``
marker, and CSV round-tripping.
"""

from repro.relational.attribute import BOOL, NULL, STRING, Attribute, Domain, NullType, is_null
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuples import CTuple
from repro.relational.io import from_csv_string, read_csv, to_csv_string, write_csv

__all__ = [
    "Attribute",
    "BOOL",
    "CTuple",
    "Domain",
    "NULL",
    "NullType",
    "Relation",
    "STRING",
    "Schema",
    "from_csv_string",
    "is_null",
    "read_csv",
    "to_csv_string",
    "write_csv",
]
