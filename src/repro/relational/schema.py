"""Relation schemas.

A :class:`Schema` is an ordered collection of uniquely named
:class:`~repro.relational.attribute.Attribute` objects, addressed by name.
Both the data schema ``R`` and the master schema ``Rm`` of the paper are
plain schemas; nothing distinguishes master data structurally (Section 2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple, Union

from repro.exceptions import SchemaError
from repro.relational.attribute import Attribute, Domain

AttributeLike = Union[str, Attribute]


class Schema:
    """An ordered, named relation schema.

    Parameters
    ----------
    name:
        The relation name, e.g. ``"tran"`` or ``"card"``.
    attributes:
        Attribute objects or bare names (which get the default string
        domain).  Order is preserved; names must be unique.

    Examples
    --------
    >>> card = Schema("card", ["FN", "LN", "St", "city", "AC", "zip", "tel", "dob", "gd"])
    >>> card.names[:3]
    ('FN', 'LN', 'St')
    >>> "zip" in card
    True
    """

    __slots__ = ("name", "_attributes", "_index", "_names")

    def __init__(self, name: str, attributes: Iterable[AttributeLike]):
        if not name or not isinstance(name, str):
            raise SchemaError(f"schema name must be a non-empty string, got {name!r}")
        attrs: List[Attribute] = []
        index: Dict[str, int] = {}
        for item in attributes:
            attr = item if isinstance(item, Attribute) else Attribute(str(item))
            if attr.name in index:
                raise SchemaError(f"duplicate attribute {attr.name!r} in schema {name!r}")
            index[attr.name] = len(attrs)
            attrs.append(attr)
        if not attrs:
            raise SchemaError(f"schema {name!r} must have at least one attribute")
        self.name = name
        self._attributes: Tuple[Attribute, ...] = tuple(attrs)
        self._index = index
        self._names: Tuple[str, ...] = tuple(a.name for a in self._attributes)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def attributes(self) -> Tuple[Attribute, ...]:
        """The attributes, in declaration order."""
        return self._attributes

    @property
    def names(self) -> Tuple[str, ...]:
        """Attribute names, in declaration order (cached at construction)."""
        return self._names

    def attribute(self, name: str) -> Attribute:
        """Return the attribute called *name*.

        Raises
        ------
        SchemaError
            If no such attribute exists.
        """
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise SchemaError(f"schema {self.name!r} has no attribute {name!r}") from None

    def domain(self, name: str) -> Domain:
        """Return the domain of attribute *name*."""
        return self.attribute(name).domain

    def index_of(self, name: str) -> int:
        """Return the positional index of attribute *name*."""
        if name not in self._index:
            raise SchemaError(f"schema {self.name!r} has no attribute {name!r}")
        return self._index[name]

    def check_attrs(self, names: Sequence[str]) -> Tuple[str, ...]:
        """Validate that every name in *names* belongs to this schema.

        Returns the names as a tuple (a convenient normalized form for
        constraint constructors).
        """
        for name in names:
            if name not in self._index:
                raise SchemaError(f"schema {self.name!r} has no attribute {name!r}")
        return tuple(names)

    # ------------------------------------------------------------------
    # Protocols
    # ------------------------------------------------------------------
    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.name == other.name and self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash((self.name, self._attributes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({self.name!r}, [{', '.join(self.names)}])"
