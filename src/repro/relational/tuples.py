"""Tuples carrying per-attribute confidence values.

The paper attaches a confidence ``t[A].cf`` to every attribute of every
tuple (the ``cf`` rows of Fig. 1): "the confidence placed by the user in the
accuracy of the attribute".  :class:`CTuple` stores values and confidences
side by side.  A confidence of ``None`` means *unavailable*, which the
cleaning algorithms treat as below any threshold (Section 6: "low or
unavailable").

:class:`CTuple` here is the *standalone*, dict-backed form; tuples
resident in a columnar :class:`~repro.relational.relation.Relation` are
:class:`~repro.relational.columns.ColumnTuple` row-views — a subclass
whose cells live in interned ref columns but which honours every method
below (clones and pickles of a row-view detach back into this class).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.exceptions import DataError, SchemaError
from repro.relational.attribute import NULL, is_null
from repro.relational.schema import Schema


class CTuple:
    """A mutable tuple of a given :class:`~repro.relational.schema.Schema`.

    Parameters
    ----------
    schema:
        The schema this tuple conforms to.
    values:
        Mapping from attribute name to value.  Missing attributes default to
        :data:`~repro.relational.attribute.NULL`.
    confidences:
        Optional mapping from attribute name to a confidence in ``[0, 1]``
        (or ``None`` for "unavailable").  Missing entries default to
        ``None``.
    tid:
        Tuple identifier, unique within a relation.  Assigned by
        :class:`~repro.relational.relation.Relation` when ``None``.
    """

    __slots__ = ("schema", "tid", "_values", "_conf")

    def __init__(
        self,
        schema: Schema,
        values: Mapping[str, Any],
        confidences: Optional[Mapping[str, Optional[float]]] = None,
        tid: Optional[int] = None,
    ):
        self.schema = schema
        self.tid = tid
        self._values: Dict[str, Any] = {}
        self._conf: Dict[str, Optional[float]] = {}
        for name in schema.names:
            self._values[name] = values.get(name, NULL)
        for extra in values:
            if extra not in schema:
                raise SchemaError(
                    f"value for unknown attribute {extra!r} of schema {schema.name!r}"
                )
        if confidences:
            for name, conf in confidences.items():
                if name not in schema:
                    raise SchemaError(
                        f"confidence for unknown attribute {name!r} of schema {schema.name!r}"
                    )
                self._check_conf(conf)
                self._conf[name] = conf
        for name in schema.names:
            self._conf.setdefault(name, None)

    @staticmethod
    def _check_conf(conf: Optional[float]) -> None:
        if conf is not None and not 0.0 <= conf <= 1.0:
            raise DataError(f"confidence must be in [0, 1] or None, got {conf!r}")

    # ------------------------------------------------------------------
    # Value access
    # ------------------------------------------------------------------
    def __getitem__(self, attr: str) -> Any:
        try:
            return self._values[attr]
        except KeyError:
            raise SchemaError(
                f"schema {self.schema.name!r} has no attribute {attr!r}"
            ) from None

    def __setitem__(self, attr: str, value: Any) -> None:
        if attr not in self._values:
            raise SchemaError(f"schema {self.schema.name!r} has no attribute {attr!r}")
        self._values[attr] = value

    def get(self, attr: str, default: Any = None) -> Any:
        """Dictionary-style access with a default."""
        return self._values.get(attr, default)

    def conf(self, attr: str) -> Optional[float]:
        """The confidence ``t[A].cf`` of attribute *attr* (``None`` = unavailable)."""
        try:
            return self._conf[attr]
        except KeyError:
            raise SchemaError(
                f"schema {self.schema.name!r} has no attribute {attr!r}"
            ) from None

    def set_conf(self, attr: str, conf: Optional[float]) -> None:
        """Set the confidence of attribute *attr*."""
        if attr not in self._conf:
            raise SchemaError(f"schema {self.schema.name!r} has no attribute {attr!r}")
        self._check_conf(conf)
        self._conf[attr] = conf

    def set(self, attr: str, value: Any, conf: Optional[float] = None) -> None:
        """Set value and confidence of *attr* in one call."""
        self[attr] = value
        self.set_conf(attr, conf)

    def has_conf_at_least(self, attr: str, threshold: float) -> bool:
        """Whether ``t[attr].cf ≥ threshold``, treating ``None`` as -∞.

        This is the *asserted attribute* test of Section 5.1.
        """
        conf = self._conf[attr]
        return conf is not None and conf >= threshold

    # ------------------------------------------------------------------
    # Projections
    # ------------------------------------------------------------------
    def project(self, attrs: Sequence[str]) -> Tuple[Any, ...]:
        """Return the values of *attrs* as a tuple, e.g. ``t[Y]``.

        This is the hottest call in the partition/entropy indexes, so it
        reads the value store directly instead of going through
        :meth:`__getitem__` per attribute.
        """
        values = self._values
        try:
            return tuple(values[a] for a in attrs)
        except KeyError as exc:
            raise SchemaError(
                f"schema {self.schema.name!r} has no attribute {exc.args[0]!r}"
            ) from None

    def project_conf(self, attrs: Sequence[str]) -> Tuple[Optional[float], ...]:
        """Return the confidences of *attrs* as a tuple."""
        return tuple(self.conf(a) for a in attrs)

    def min_conf(self, attrs: Sequence[str]) -> Optional[float]:
        """The fuzzy-logic minimum confidence over *attrs*.

        Section 3.1: the new confidence of a repaired attribute is the
        *minimum* of the confidences in the rule premise ("we update the
        confidence by taking the minimum rather than the product").  If any
        premise confidence is unavailable the result is ``None``.
        """
        confs = [self.conf(a) for a in attrs]
        if not confs:
            return None
        if any(c is None for c in confs):
            return None
        return min(confs)  # type: ignore[type-var]

    def has_null(self, attrs: Sequence[str]) -> bool:
        """Whether any of *attrs* is :data:`NULL` in this tuple."""
        values = self._values
        return any(is_null(values[a]) for a in attrs)

    # ------------------------------------------------------------------
    # Conversions / copying
    # ------------------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """A fresh dict of attribute name → value."""
        return dict(self._values)

    def conf_dict(self) -> Dict[str, Optional[float]]:
        """A fresh dict of attribute name → confidence."""
        return dict(self._conf)

    def clone(self) -> "CTuple":
        """A deep-enough copy (values are assumed immutable scalars)."""
        twin = CTuple.__new__(CTuple)
        twin.schema = self.schema
        twin.tid = self.tid
        twin._values = dict(self._values)
        twin._conf = dict(self._conf)
        return twin

    # ------------------------------------------------------------------
    # Protocols
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Any]:
        return (self._values[name] for name in self.schema.names)

    def __len__(self) -> int:
        return len(self.schema)

    def __eq__(self, other: object) -> bool:
        """Value equality over all attributes (confidence is metadata)."""
        if not isinstance(other, CTuple):
            return NotImplemented
        return self.schema == other.schema and self._values == other._values

    def __hash__(self) -> int:
        return hash((self.schema.name, tuple(self._values[n] for n in self.schema.names)))

    def values_equal(self, other: "CTuple", attrs: Optional[Iterable[str]] = None) -> bool:
        """Strict equality of values on *attrs* (all attributes if ``None``)."""
        names = list(attrs) if attrs is not None else list(self.schema.names)
        return all(self[a] == other[a] for a in names)

    def diff(self, other: "CTuple") -> Tuple[str, ...]:
        """Attribute names on which this tuple and *other* differ."""
        if self.schema != other.schema:
            raise DataError("cannot diff tuples with different schemas")
        return tuple(n for n in self.schema.names if self[n] != other[n])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{n}={self._values[n]!r}" for n in self.schema.names)
        return f"CTuple(#{self.tid}: {inner})"
