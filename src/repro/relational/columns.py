"""Columnar resident backing store for :class:`~repro.relational.relation.Relation`.

PR 4 proved a value-dictionary + typed-column encoding of relational
state on the *wire* (:mod:`repro.pipeline.payload`); this module promotes
it to the **resident** format, in the spirit of FDB-style factorised /
dictionary-encoded representations: every scalar a relation holds lives
once in a process-wide interning :class:`ValueTable`, and each attribute
is a typed column of small integer references (the narrowest
:class:`array.array` width that fits, widened on demand).  Cell reads,
premise matching and partition maintenance then work on integers instead
of hashing strings through per-tuple ``dict.__getitem__`` — the single
biggest per-row constant of every repair phase.

Layout of one :class:`ColumnStore` (one per columnar relation)::

    table        process-wide ValueTable: ref -> value, with a parallel
                 ``canon`` array mapping every ref to the first ref whose
                 value compares ``==`` (so canon-ref equality IS value
                 equality, across types: ``0 == 0.0`` share a canon ref)
    values[i]    IntColumn of value refs for attribute i (schema order)
    confs[i]     IntColumn of confidence refs for attribute i
    nulls[i]     Bitmap: row has NULL in attribute i
    dead         Bitmap: row was tombstoned by ``Relation.remove``
    row_tids     row -> tid (dead rows hold ``-1 - tid``)
    row_of       tid -> row; **survives** ``remove()`` — retired tids keep
                 resolving to their tombstoned row so delete observers can
                 still read the removed tuple's values

Rows are append-only; ``remove()`` tombstones (no compaction), which is
what keeps the delete-observer contract — values stay readable after
removal — and the tid→row map stable.  ``clone()``/``restrict(copy=True)``
rebuild compactly by copying refs, never re-interning values.

:class:`ColumnTuple` is a thin row-view subclassing
:class:`~repro.relational.tuples.CTuple`, so the entire existing API —
observer hooks, ``project``, confidence access, pickling — stays
source-compatible.  Its ``_values``/``_conf`` dict attributes become
properties that materialize on demand *and* bump a module counter, which
the CI regression test uses to assert the vectorized check paths perform
zero per-tuple dict materializations.

Two process-wide switches, both overridable per call site:

* backend — ``REPRO_COLUMNAR=0`` (or :func:`set_default_columnar`)
  makes new relations dict-backed again (``Relation(schema,
  columnar=...)`` overrides per relation);
* check engine — ``REPRO_CHECK_ENGINE=reference`` (or
  :func:`set_check_engine`) routes violation checks and group-store bulk
  builds through the original per-tuple loops.  The vectorized engine is
  byte-identical to the reference engine by construction and by the
  property tests in ``tests/properties/test_property_columnar.py``;
* repair engine — ``REPRO_REPAIR_ENGINE=reference`` (or
  :func:`set_repair_engine`) routes the cRepair/eRepair/hRepair kernels
  through the original per-tuple loops instead of the ref-column
  (and numpy-accelerated) paths.  The same byte-identity contract
  applies, enforced by ``tests/properties/test_property_repair_engines.py``;
* match engine — ``REPRO_MATCH_ENGINE=reference`` (or
  :func:`set_match_engine`) routes MD premise matching back through the
  per-tuple top-l suffix-tree retrieval instead of the filtered
  inverted-index similarity join (``matching/simjoin.py``).  Unlike the
  other pairs, the join engine is *more* exact than the reference one
  (top-l retrieval can drop true matches); match sets are byte-identical
  wherever the reference path is itself exhaustive, enforced by
  ``tests/properties/test_property_match_engines.py``.
"""

from __future__ import annotations

import os
from array import array
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

try:  # numpy accelerates the repair kernels; every caller falls back to
    # pure python when it is absent, so the import is best-effort.
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the image
    _np = None

from repro.exceptions import SchemaError
from repro.relational.attribute import NULL
from repro.relational.schema import Schema
from repro.relational.tuples import CTuple

__all__ = [
    "Bitmap",
    "ColumnStore",
    "ColumnTuple",
    "IntColumn",
    "ValueTable",
    "GLOBAL_TABLE",
    "check_engine",
    "default_columnar",
    "match_engine",
    "materializations",
    "numpy_or_none",
    "repair_engine",
    "repair_vectorized_for",
    "set_check_engine",
    "set_default_columnar",
    "set_match_engine",
    "set_repair_engine",
    "using_backend",
    "using_engine",
    "using_match_engine",
    "using_repair_engine",
    "vectorized_for",
]


# ----------------------------------------------------------------------
# Process-wide switches
# ----------------------------------------------------------------------
_DEFAULT_COLUMNAR: bool = os.environ.get("REPRO_COLUMNAR", "1") != "0"
_CHECK_ENGINE: str = os.environ.get("REPRO_CHECK_ENGINE", "vectorized")
_REPAIR_ENGINE: str = os.environ.get("REPRO_REPAIR_ENGINE", "vectorized")
_MATCH_ENGINE: str = os.environ.get("REPRO_MATCH_ENGINE", "join")
_ENGINES = ("vectorized", "reference")
_MATCH_ENGINES = ("join", "reference")

#: Counter of on-demand ``_values``/``_conf`` dict materializations by
#: row-views — the hot paths must never trigger one (CI regression test).
_MATERIALIZATIONS: int = 0


def default_columnar() -> bool:
    """Whether new relations default to the columnar backing store."""
    return _DEFAULT_COLUMNAR


def set_default_columnar(flag: bool) -> bool:
    """Set the backend default; returns the previous value."""
    global _DEFAULT_COLUMNAR
    previous = _DEFAULT_COLUMNAR
    _DEFAULT_COLUMNAR = bool(flag)
    return previous


def check_engine() -> str:
    """The active check engine: ``"vectorized"`` or ``"reference"``."""
    return _CHECK_ENGINE


def set_check_engine(name: str) -> str:
    """Select the check engine; returns the previous one."""
    global _CHECK_ENGINE
    if name not in _ENGINES:
        raise ValueError(f"unknown check engine {name!r}; expected one of {_ENGINES}")
    previous = _CHECK_ENGINE
    _CHECK_ENGINE = name
    return previous


def vectorized_for(relation: Any) -> bool:
    """Whether the vectorized engine applies to *relation* right now."""
    return _CHECK_ENGINE == "vectorized" and getattr(relation, "column_store", None) is not None


def repair_engine() -> str:
    """The active repair engine: ``"vectorized"`` or ``"reference"``."""
    return _REPAIR_ENGINE


def set_repair_engine(name: str) -> str:
    """Select the repair engine; returns the previous one."""
    global _REPAIR_ENGINE
    if name not in _ENGINES:
        raise ValueError(f"unknown repair engine {name!r}; expected one of {_ENGINES}")
    previous = _REPAIR_ENGINE
    _REPAIR_ENGINE = name
    return previous


def repair_vectorized_for(relation: Any) -> bool:
    """Whether the vectorized repair kernels apply to *relation* right now
    (the flag is on *and* the relation is column-backed — dict relations
    always take the reference per-tuple path)."""
    return (
        _REPAIR_ENGINE == "vectorized"
        and getattr(relation, "column_store", None) is not None
    )


def match_engine() -> str:
    """The active MD match engine: ``"join"`` or ``"reference"``."""
    return _MATCH_ENGINE


def set_match_engine(name: str) -> str:
    """Select the match engine; returns the previous one."""
    global _MATCH_ENGINE
    if name not in _MATCH_ENGINES:
        raise ValueError(
            f"unknown match engine {name!r}; expected one of {_MATCH_ENGINES}"
        )
    previous = _MATCH_ENGINE
    _MATCH_ENGINE = name
    return previous


def numpy_or_none() -> Any:
    """The ``numpy`` module when importable, else ``None`` — repair
    kernels branch on this and keep a pure-python fallback.  Note that
    numpy views over :class:`IntColumn` buffers (``np.frombuffer``) go
    stale when the column widens, so callers must build views fresh at
    each use site, never cache them across mutations."""
    return _np


@contextmanager
def using_backend(columnar: bool) -> Iterator[None]:
    """Temporarily force the backend default (tests)."""
    previous = set_default_columnar(columnar)
    try:
        yield
    finally:
        set_default_columnar(previous)


@contextmanager
def using_engine(name: str) -> Iterator[None]:
    """Temporarily force the check engine (tests)."""
    previous = set_check_engine(name)
    try:
        yield
    finally:
        set_check_engine(previous)


@contextmanager
def using_repair_engine(name: str) -> Iterator[None]:
    """Temporarily force the repair engine (tests)."""
    previous = set_repair_engine(name)
    try:
        yield
    finally:
        set_repair_engine(previous)


@contextmanager
def using_match_engine(name: str) -> Iterator[None]:
    """Temporarily force the match engine (tests)."""
    previous = set_match_engine(name)
    try:
        yield
    finally:
        set_match_engine(previous)


def materializations() -> int:
    """How many row-view dict materializations happened so far."""
    return _MATERIALIZATIONS


def _count_materialization() -> None:
    global _MATERIALIZATIONS
    _MATERIALIZATIONS += 1


# ----------------------------------------------------------------------
# Value interning
# ----------------------------------------------------------------------
class ValueTable:
    """A process-wide scalar dictionary: value → small integer reference.

    Generalizes :class:`repro.pipeline.payload.ValueTable` (same
    ``(type, value)`` dedup keeping ``0``/``0.0``/``False`` distinct)
    with a **canonical-reference** map: ``canon[ref]`` is the first ref
    whose value compares ``==`` to ``values[ref]`` under plain Python
    equality (dict/set semantics).  Canon-ref equality is therefore
    exactly value equality — the property every vectorized check relies
    on to replace ``t[A] == t2[A]`` with one int comparison.

    ``NULL`` is interned at construction, so ``null_canon`` is a stable
    constant (ref 0) for null tests on refs.
    """

    __slots__ = ("values", "_index", "canon", "_canon_index", "null_ref", "null_canon")

    def __init__(self) -> None:
        self.values: List[Any] = []
        self._index: Dict[Tuple[type, Any], int] = {}
        #: ref -> canonical ref of its ``==`` equality class.
        self.canon: List[int] = []
        self._canon_index: Dict[Any, int] = {}
        self.null_ref = self.ref(NULL)
        self.null_canon = self.canon[self.null_ref]

    def __len__(self) -> int:
        return len(self.values)

    def ref(self, value: Any) -> int:
        """Intern *value*, returning its table reference."""
        try:
            key = (value.__class__, value)
            index = self._index.get(key)
            if index is None:
                index = self._index[key] = len(self.values)
                self.values.append(value)
                self.canon.append(self._canon_index.setdefault(value, index))
            return index
        except TypeError:  # unhashable: store without dedup, own canon class
            index = len(self.values)
            self.values.append(value)
            self.canon.append(index)
            return index

    def canon_ref(self, value: Any) -> int:
        """The canonical reference of *value*'s ``==`` equality class."""
        return self.canon[self.ref(value)]

    def find_canon(self, value: Any) -> Optional[int]:
        """The canonical reference of *value* **without interning it**, or
        ``None`` when no interned value compares ``==`` to it — the probe
        predicates use so lookups never grow the table.  Unhashable probes
        raise ``TypeError`` (callers fall back to a ``==`` scan)."""
        return self._canon_index.get(value)

    def intern_tuple(self, values: Sequence[Any]) -> Tuple[Any, ...]:
        """Intern every scalar of *values* and return them as a tuple of
        the canonical *value objects* (table-resident instances) — the
        shared tuple-key interning group stores use so equal keys across
        stores are identity hits."""
        table_values = self.values
        return tuple(table_values[self.ref(v)] for v in values)

    def strings(self, refs: Sequence[int]) -> List[str]:
        """The ``str()`` forms of *refs*, aligned with the input.

        Bulk string-column access for similarity-index builds: the
        conversion runs once per *distinct* ref (string values pass
        through untouched), so a million-row column with a few thousand
        distinct values costs a few thousand ``str()`` calls."""
        values = self.values
        memo: Dict[int, str] = {}
        out: List[str] = []
        for ref in refs:
            s = memo.get(ref)
            if s is None:
                value = values[ref]
                s = memo[ref] = value if isinstance(value, str) else str(value)
            out.append(s)
        return out


#: The process-wide resident dictionary every columnar relation shares.
GLOBAL_TABLE = ValueTable()


# ----------------------------------------------------------------------
# Typed columns and bitmaps
# ----------------------------------------------------------------------
_WIDER = {"B": "H", "H": "I", "I": "Q"}
_LIMIT = {"B": 1 << 8, "H": 1 << 16, "I": 1 << 32, "Q": None}


class IntColumn:
    """An :class:`array.array` of non-negative ints at the narrowest
    width that fits, widened transparently when a larger ref arrives
    (the resident counterpart of :func:`repro.pipeline.payload.pack_ints`,
    which packs a *finished* sequence)."""

    __slots__ = ("data", "_limit")

    def __init__(self, data: Optional[array] = None):
        self.data = array("B") if data is None else data
        self._limit = _LIMIT[self.data.typecode]

    def _widen(self, value: int) -> None:
        code = self.data.typecode
        while _LIMIT[code] is not None and value >= _LIMIT[code]:
            code = _WIDER[code]
        self.data = array(code, self.data)
        self._limit = _LIMIT[code]

    def append(self, value: int) -> None:
        if self._limit is not None and value >= self._limit:
            self._widen(value)
        self.data.append(value)

    def __getitem__(self, row: int) -> int:
        return self.data[row]

    def __setitem__(self, row: int, value: int) -> None:
        if self._limit is not None and value >= self._limit:
            self._widen(value)
        self.data[row] = value

    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[int]:
        return iter(self.data)

    def copy(self) -> "IntColumn":
        return IntColumn(array(self.data.typecode, self.data))

    @property
    def typecode(self) -> str:
        return self.data.typecode

    def nbytes(self) -> int:
        return len(self.data) * self.data.itemsize


class Bitmap:
    """A growable bit vector (null flags per attribute, tombstoned rows)."""

    __slots__ = ("bits", "n")

    def __init__(self, bits: Optional[bytearray] = None, n: int = 0):
        self.bits = bytearray() if bits is None else bits
        self.n = n

    def append(self, flag: bool) -> None:
        byte, bit = divmod(self.n, 8)
        if byte >= len(self.bits):
            self.bits.append(0)
        if flag:
            self.bits[byte] |= 1 << bit
        self.n += 1

    def get(self, index: int) -> bool:
        byte, bit = divmod(index, 8)
        return bool((self.bits[byte] >> bit) & 1)

    def set(self, index: int, flag: bool) -> None:
        byte, bit = divmod(index, 8)
        if flag:
            self.bits[byte] |= 1 << bit
        else:
            self.bits[byte] &= ~(1 << bit)

    def __len__(self) -> int:
        return self.n

    def count(self) -> int:
        return sum(bin(byte).count("1") for byte in self.bits)

    def copy(self) -> "Bitmap":
        return Bitmap(bytearray(self.bits), self.n)


# ----------------------------------------------------------------------
# The per-relation store
# ----------------------------------------------------------------------
#: Compaction auto-trigger thresholds: stores smaller than the row floor
#: never compact (tiny scans gain nothing and tests rely on tombstones
#: staying inspectable), larger ones compact once live rows drop below
#: the ratio of total rows.
COMPACT_MIN_ROWS = 64
COMPACT_LIVE_RATIO = 0.5


class ColumnStore:
    """Typed ref columns + bookkeeping for one columnar relation."""

    __slots__ = (
        "schema", "table", "index_of", "values", "confs", "nulls",
        "dead", "row_tids", "row_of", "n_dead", "shared",
    )

    def __init__(self, schema: Schema, table: Optional[ValueTable] = None):
        self.schema = schema
        self.table = GLOBAL_TABLE if table is None else table
        self.index_of: Dict[str, int] = {
            name: i for i, name in enumerate(schema.names)
        }
        self.values: List[IntColumn] = [IntColumn() for _ in schema.names]
        self.confs: List[IntColumn] = [IntColumn() for _ in schema.names]
        self.nulls: List[Bitmap] = [Bitmap() for _ in schema.names]
        self.dead = Bitmap()
        #: row -> tid; tombstoned rows hold ``-1 - tid`` so C-speed zips
        #: over live data can skip them with one sign test.
        self.row_tids: List[int] = []
        #: tid -> row; retired tids keep their entry (rows are never
        #: reused, so a dead tid can never alias a later insert's row).
        self.row_of: Dict[int, int] = {}
        self.n_dead = 0
        #: ``True`` once a zero-copy view shares these columns
        #: (``Relation.restrict(copy=False)``).  Shared stores are never
        #: tombstoned or compacted by any one owner: neither owner can
        #: know which rows the other still considers live.
        self.shared = False

    # -- rows ----------------------------------------------------------
    def append_refs(
        self, tid: int, vrefs: Sequence[int], crefs: Sequence[int]
    ) -> int:
        """Append a row of already-interned refs; returns the row index."""
        row = len(self.row_tids)
        canon = self.table.canon
        null_c = self.table.null_canon
        for col, bitmap, ref in zip(self.values, self.nulls, vrefs):
            col.append(ref)
            bitmap.append(canon[ref] == null_c)
        for col, ref in zip(self.confs, crefs):
            col.append(ref)
        self.dead.append(False)
        self.row_tids.append(tid)
        self.row_of[tid] = row
        return row

    def append_values(
        self, tid: int, values: Sequence[Any], confs: Sequence[Any]
    ) -> int:
        """Intern and append one row (schema attribute order)."""
        ref = self.table.ref
        return self.append_refs(
            tid, [ref(v) for v in values], [ref(c) for c in confs]
        )

    def adopt_row(self, tid: int, source: "ColumnStore", row: int) -> int:
        """Append a copy of *source*'s row — by ref when the tables are
        shared (the normal case: one process-wide table), re-interned
        otherwise."""
        vrefs = [col.data[row] for col in source.values]
        crefs = [col.data[row] for col in source.confs]
        if source.table is not self.table:
            values = source.table.values
            ref = self.table.ref
            vrefs = [ref(values[r]) for r in vrefs]
            crefs = [ref(values[r]) for r in crefs]
        return self.append_refs(tid, vrefs, crefs)

    def kill(self, tid: int) -> None:
        """Tombstone *tid*'s row: values stay readable (delete observers
        re-read them), but bulk scans skip the row from now on."""
        row = self.row_of[tid]
        if self.row_tids[row] >= 0:
            self.row_tids[row] = -1 - tid
            self.dead.set(row, True)
            self.n_dead += 1

    # -- compaction ----------------------------------------------------
    def should_compact(self) -> bool:
        """Whether a delete-heavy store is worth compacting: not shared,
        at least :data:`COMPACT_MIN_ROWS` physical rows, and live rows
        below :data:`COMPACT_LIVE_RATIO` of the total."""
        n = len(self.row_tids)
        return (
            not self.shared
            and n >= COMPACT_MIN_ROWS
            and (n - self.n_dead) < n * COMPACT_LIVE_RATIO
        )

    def compact(self) -> Dict[int, int]:
        """Drop tombstoned rows and rebuild the columns densely.

        Keeps exactly the rows that are both live (``tid >= 0``) and
        *current* (``row_of[tid] == row`` — a re-install of the same tid
        leaves an earlier live-looking duplicate row behind; compaction
        is where those finally get reclaimed).  Tids are stable: every
        surviving tid maps to the same value/conf cells afterwards, only
        its physical row index changes.  Returns the old-row → new-row
        remap so the owning relation can re-point resident row-views.
        Retired tids lose their ``row_of`` entry — their cells are gone.
        """
        if self.shared:
            raise ValueError("cannot compact a shared column store")
        keep = [
            row
            for row, tid in enumerate(self.row_tids)
            if tid >= 0 and self.row_of.get(tid) == row
        ]
        remap = {row: new for new, row in enumerate(keep)}
        for cols in (self.values, self.confs):
            for i, col in enumerate(cols):
                data = col.data
                cols[i] = IntColumn(
                    array(data.typecode, (data[row] for row in keep))
                )
        new_nulls = []
        for bitmap in self.nulls:
            fresh = Bitmap()
            for row in keep:
                fresh.append(bitmap.get(row))
            new_nulls.append(fresh)
        self.nulls = new_nulls
        dead = Bitmap()
        for _ in keep:
            dead.append(False)
        self.dead = dead
        self.row_tids = [self.row_tids[row] for row in keep]
        self.row_of = {tid: row for row, tid in enumerate(self.row_tids)}
        self.n_dead = 0
        return remap

    # -- cells ---------------------------------------------------------
    def value_at(self, row: int, index: int) -> Any:
        return self.table.values[self.values[index].data[row]]

    def set_value_at(self, row: int, index: int, value: Any) -> None:
        ref = self.table.ref(value)
        self.values[index][row] = ref
        self.nulls[index].set(row, self.table.canon[ref] == self.table.null_canon)

    def conf_at(self, row: int, index: int) -> Optional[float]:
        return self.table.values[self.confs[index].data[row]]

    def set_conf_at(self, row: int, index: int, conf: Optional[float]) -> None:
        self.confs[index][row] = self.table.ref(conf)

    # -- introspection -------------------------------------------------
    def live_rows(self) -> int:
        return len(self.row_tids) - self.n_dead

    def nbytes(self) -> int:
        """Resident column bytes (refs + bitmaps; the shared dictionary
        is process-wide and excluded)."""
        total = sum(c.nbytes() for c in self.values)
        total += sum(c.nbytes() for c in self.confs)
        total += sum(len(b.bits) for b in self.nulls)
        total += len(self.dead.bits)
        return total


# ----------------------------------------------------------------------
# The row-view tuple
# ----------------------------------------------------------------------
def _rebuild_detached(
    schema: Schema,
    values: Dict[str, Any],
    confs: Dict[str, Optional[float]],
    tid: Optional[int],
) -> CTuple:
    """Pickle helper: a row-view unpickles as a detached plain CTuple."""
    t = CTuple.__new__(CTuple)
    t.schema = schema
    t.tid = tid
    t._values = values
    t._conf = confs
    return t


class ColumnTuple(CTuple):
    """A :class:`CTuple` whose cells live in a :class:`ColumnStore` row.

    Source-compatible with the dict-backed parent: every accessor reads
    or writes the backing columns, and the legacy ``_values``/``_conf``
    attributes are materialize-on-demand properties (counted, so the
    vectorized hot paths can be asserted dict-free).  Standalone clones
    and pickles detach into plain dict-backed tuples.
    """

    __slots__ = ("_store", "_row")

    def __init__(self, *args: Any, **kwargs: Any):  # pragma: no cover - guard
        raise TypeError(
            "ColumnTuple rows are created by their Relation; "
            "use Relation.add / add_row"
        )

    @staticmethod
    def make(store: ColumnStore, row: int, tid: int) -> "ColumnTuple":
        view = object.__new__(ColumnTuple)
        view.schema = store.schema
        view.tid = tid
        view._store = store
        view._row = row
        return view

    # -- legacy dict attributes (materialize + count) ------------------
    @property
    def _values(self) -> Dict[str, Any]:  # type: ignore[override]
        _count_materialization()
        store = self._store
        row = self._row
        values = store.table.values
        return {
            name: values[col.data[row]]
            for name, col in zip(store.schema.names, store.values)
        }

    @property
    def _conf(self) -> Dict[str, Optional[float]]:  # type: ignore[override]
        _count_materialization()
        store = self._store
        row = self._row
        values = store.table.values
        return {
            name: values[col.data[row]]
            for name, col in zip(store.schema.names, store.confs)
        }

    # -- value access --------------------------------------------------
    def __getitem__(self, attr: str) -> Any:
        store = self._store
        try:
            index = store.index_of[attr]
        except KeyError:
            raise SchemaError(
                f"schema {self.schema.name!r} has no attribute {attr!r}"
            ) from None
        return store.table.values[store.values[index].data[self._row]]

    def __setitem__(self, attr: str, value: Any) -> None:
        store = self._store
        try:
            index = store.index_of[attr]
        except KeyError:
            raise SchemaError(
                f"schema {self.schema.name!r} has no attribute {attr!r}"
            ) from None
        store.set_value_at(self._row, index, value)

    def get(self, attr: str, default: Any = None) -> Any:
        store = self._store
        index = store.index_of.get(attr)
        if index is None:
            return default
        return store.table.values[store.values[index].data[self._row]]

    def conf(self, attr: str) -> Optional[float]:
        store = self._store
        try:
            index = store.index_of[attr]
        except KeyError:
            raise SchemaError(
                f"schema {self.schema.name!r} has no attribute {attr!r}"
            ) from None
        return store.table.values[store.confs[index].data[self._row]]

    def set_conf(self, attr: str, conf: Optional[float]) -> None:
        store = self._store
        try:
            index = store.index_of[attr]
        except KeyError:
            raise SchemaError(
                f"schema {self.schema.name!r} has no attribute {attr!r}"
            ) from None
        self._check_conf(conf)
        store.set_conf_at(self._row, index, conf)

    def has_conf_at_least(self, attr: str, threshold: float) -> bool:
        conf = self.conf(attr)
        return conf is not None and conf >= threshold

    # -- projections ---------------------------------------------------
    def project(self, attrs: Sequence[str]) -> Tuple[Any, ...]:
        store = self._store
        row = self._row
        values = store.table.values
        cols = store.values
        try:
            index_of = store.index_of
            return tuple(values[cols[index_of[a]].data[row]] for a in attrs)
        except KeyError as exc:
            raise SchemaError(
                f"schema {self.schema.name!r} has no attribute {exc.args[0]!r}"
            ) from None

    def project_refs(self, attrs: Sequence[str]) -> Tuple[int, ...]:
        """The interned refs of *attrs* for this row (ref-level slice)."""
        store = self._store
        row = self._row
        index_of = store.index_of
        cols = store.values
        return tuple(cols[index_of[a]].data[row] for a in attrs)

    def project_conf(self, attrs: Sequence[str]) -> Tuple[Optional[float], ...]:
        return tuple(self.conf(a) for a in attrs)

    def has_null(self, attrs: Sequence[str]) -> bool:
        store = self._store
        row = self._row
        nulls = store.nulls
        index_of = store.index_of
        return any(nulls[index_of[a]].get(row) for a in attrs)

    # -- conversions / copying ----------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        store = self._store
        row = self._row
        values = store.table.values
        return {
            name: values[col.data[row]]
            for name, col in zip(store.schema.names, store.values)
        }

    def conf_dict(self) -> Dict[str, Optional[float]]:
        store = self._store
        row = self._row
        values = store.table.values
        return {
            name: values[col.data[row]]
            for name, col in zip(store.schema.names, store.confs)
        }

    def clone(self) -> CTuple:
        """A detached, dict-backed deep copy (standalone clones do not
        belong to any column store)."""
        return _rebuild_detached(
            self.schema, self.as_dict(), self.conf_dict(), self.tid
        )

    def __reduce__(self):
        return (
            _rebuild_detached,
            (self.schema, self.as_dict(), self.conf_dict(), self.tid),
        )

    # -- protocols -----------------------------------------------------
    def __iter__(self) -> Iterator[Any]:
        store = self._store
        row = self._row
        values = store.table.values
        return (values[col.data[row]] for col in store.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CTuple):
            return NotImplemented
        if self.schema != other.schema:
            return False
        if isinstance(other, ColumnTuple) and other._store.table is self._store.table:
            canon = self._store.table.canon
            mine = self._store
            theirs = other._store
            my_row = self._row
            their_row = other._row
            for my_col, their_col in zip(mine.values, theirs.values):
                if (
                    canon[my_col.data[my_row]]
                    != canon[their_col.data[their_row]]
                ):
                    return False
            return True
        return all(self[name] == other[name] for name in self.schema.names)

    def __hash__(self) -> int:
        return hash((self.schema.name, tuple(self)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{n}={v!r}" for n, v in zip(self.schema.names, self)
        )
        return f"CTuple(#{self.tid}: {inner})"
