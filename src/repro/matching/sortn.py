"""The sorted-neighborhood method (SortN) — the Exp-2 matching baseline.

Hernandez & Stolfo's merge/purge method (Data Mining and Knowledge
Discovery, 1998), as cited and used by the paper: "the sorted neighborhood
method of [Hernandez and Stolfo 1998], denoted by SortN, for record
matching based on MDs only."

The method: (1) derive a sorting key from each record, (2) sort data and
master records together on the key, (3) slide a fixed-size window over the
sorted sequence and compare only records inside the same window —
verifying the MD premise for (data, master) pairs.  Multi-pass variants
re-run with different keys; :class:`SortedNeighborhood` supports a key per
MD and unions the results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Set, Tuple

from repro.constraints.md import MD
from repro.matching.matcher import MatchResult
from repro.relational.attribute import is_null
from repro.relational.relation import Relation
from repro.relational.tuples import CTuple

KeyFunction = Callable[[CTuple], str]


def default_key(md: MD, master_side: bool) -> KeyFunction:
    """The default sorting key for an MD: premise values concatenated.

    Data tuples use the data-side premise attributes, master tuples the
    master-side ones, so corresponding records sort near each other.
    Values are lower-cased and nulls map to the empty string (sorting
    first, which keeps incomplete records adjacent rather than scattered).
    """
    attrs = [c.master_attr if master_side else c.attr for c in md.premise]

    def key(t: CTuple) -> str:
        parts = []
        for attr in attrs:
            value = t[attr]
            parts.append("" if is_null(value) else str(value).lower())
        return "|".join(parts)

    return key


class SortedNeighborhood:
    """SortN(MD): sorted-neighborhood matching of ``D`` against ``Dm``.

    Parameters
    ----------
    mds:
        MDs whose premises define a match (normalized internally).
    master:
        Master data ``Dm``.
    window:
        The sliding-window size ``w`` (records compared per position).
    key_functions:
        Optional ``(data_key, master_key)`` per normalized MD; defaults to
        :func:`default_key`.
    """

    def __init__(
        self,
        mds: Sequence[MD],
        master: Relation,
        window: int = 10,
        key_functions: Optional[Sequence[Tuple[KeyFunction, KeyFunction]]] = None,
    ):
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window}")
        self.mds: List[MD] = []
        for md in mds:
            self.mds.extend(md.normalize())
        self.master = master
        self.window = window
        if key_functions is not None:
            if len(key_functions) != len(self.mds):
                raise ValueError("one (data_key, master_key) pair per normalized MD")
            self.key_functions = list(key_functions)
        else:
            self.key_functions = [
                (default_key(md, master_side=False), default_key(md, master_side=True))
                for md in self.mds
            ]

    def match(self, relation: Relation) -> MatchResult:
        """One pass per MD; union of window-local premise matches."""
        result = MatchResult()
        for md, (data_key, master_key) in zip(self.mds, self.key_functions):
            # Merge both relations into one keyed sequence.  Entries carry
            # their origin so only (data, master) pairs are compared.
            entries: List[Tuple[str, bool, CTuple]] = []
            for t in relation:
                entries.append((data_key(t), False, t))
            for s in self.master:
                entries.append((master_key(s), True, s))
            entries.sort(key=lambda item: (item[0], item[1], item[2].tid or 0))
            for i, (_, is_master_i, record_i) in enumerate(entries):
                upper = min(len(entries), i + self.window)
                for j in range(i + 1, upper):
                    _, is_master_j, record_j = entries[j]
                    if is_master_i == is_master_j:
                        continue
                    t, s = (record_j, record_i) if is_master_i else (record_i, record_j)
                    result.comparisons += 1
                    if md.premise_holds(t, s):
                        result.pairs.add((t.tid, s.tid))  # type: ignore[arg-type]
        return result
