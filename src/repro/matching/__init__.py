"""Record matching: MD-driven matching and the SortN baseline (Exp-2)."""

from repro.matching.matcher import MatchResult, MDMatcher, match_after_cleaning
from repro.matching.sortn import SortedNeighborhood, default_key

__all__ = [
    "MDMatcher",
    "MatchResult",
    "SortedNeighborhood",
    "default_key",
    "match_after_cleaning",
]
