"""Record matching: MD-driven matching, the similarity-join engine
behind it (``simjoin``), and the SortN baseline (Exp-2)."""

from repro.matching.matcher import MatchResult, MDMatcher, match_after_cleaning
from repro.matching.simjoin import ProfileCache, QGramIndex, ValueGroup
from repro.matching.sortn import SortedNeighborhood, default_key

__all__ = [
    "MDMatcher",
    "MatchResult",
    "ProfileCache",
    "QGramIndex",
    "SortedNeighborhood",
    "ValueGroup",
    "default_key",
    "match_after_cleaning",
]
