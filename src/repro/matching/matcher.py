"""MD-based record matching against master data.

Record matching in this paper identifies tuples of the dirty relation
``D`` with master tuples of ``Dm`` via MD premises (Section 2.2).  The
evaluation of Exp-2 measures match quality as the set of ``(tid,
master_tid)`` pairs an approach discovers; UniClean's matches are read off
the repaired relation (whose attributes have been corrected, letting MD
premises fire), while the baseline matches on the dirty data directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.constraints.md import MD
from repro.indexing.blocking import MDBlockingIndex
from repro.relational.relation import Relation


@dataclass
class MatchResult:
    """Discovered matches: pairs of ``(data tid, master tid)``."""

    pairs: Set[Tuple[int, int]] = field(default_factory=set)
    comparisons: int = 0

    def matched_tids(self) -> Set[int]:
        """Data-side tids participating in at least one match."""
        return {tid for tid, _ in self.pairs}


class MDMatcher:
    """Match data tuples to master tuples with MD premises.

    Parameters
    ----------
    mds:
        The MDs Γ; each (normalized) MD contributes matches through its
        premise.  A pair matches when the premise of *any* MD holds.
    master:
        Master data ``Dm``.
    top_l, use_suffix_tree:
        Blocking parameters (Section 5.2).
    engine:
        MD match engine override; ``None`` defers to the process-wide
        ``REPRO_MATCH_ENGINE`` flag.
    """

    def __init__(
        self,
        mds: Sequence[MD],
        master: Relation,
        top_l: int = 20,
        use_suffix_tree: bool = True,
        engine: Optional[str] = None,
    ):
        self.master = master
        self.mds: List[MD] = []
        for md in mds:
            self.mds.extend(md.normalize())
        self.indexes = [
            MDBlockingIndex(
                md, master, top_l=top_l, use_suffix_tree=use_suffix_tree, engine=engine
            )
            for md in self.mds
        ]

    def match(self, relation: Relation) -> MatchResult:
        """All ``(tid, master_tid)`` pairs matched by some MD premise."""
        result = MatchResult()
        for index in self.indexes:
            for t in relation:
                candidates = index.candidates(t)
                result.comparisons += len(candidates)
                for s in candidates:
                    if index.md.premise_holds(t, s):
                        result.pairs.add((t.tid, s.tid))  # type: ignore[arg-type]
        return result


def match_after_cleaning(
    repaired: Relation,
    mds: Sequence[MD],
    master: Relation,
    top_l: int = 20,
    use_suffix_tree: bool = True,
    engine: Optional[str] = None,
) -> MatchResult:
    """Matches read off a (repaired) relation — UniClean's Exp-2 output.

    "Repairing helps matching": running the same MD premises on the
    repaired relation discovers matches the dirty data hides.
    """
    matcher = MDMatcher(
        mds, master, top_l=top_l, use_suffix_tree=use_suffix_tree, engine=engine
    )
    return matcher.match(repaired)
