"""Set-based similarity-join engine for MD premise matching.

MD premise verification is a thresholded similarity join: every dirty
tuple must find the master tuples whose compared attribute is within an
edit budget (or above a Jaccard threshold).  The reference path walks a
generalized suffix tree per lookup and keeps only the top-l LCS
candidates — fast, but *lossy*: the cap can drop true matches, forcing
rare-path exhaustive re-verification downstream.

This module replaces that with the classic filtered inverted-index join
(Gravano et al. 2001; Xiao et al. 2011, both cited by the paper):

1. **length filter** — group master rows by attribute value (one group
   per distinct value; duplicates index once) and bucket the groups by
   size key (string length for edit-k, gram-set size for Jaccard-t); a
   probe only visits buckets inside the admissible window;
2. **prefix filter** — tokens are globally ordered by ascending master
   frequency; each bucket holds inverted lists over only the first
   ``|G| - T_min + 1`` tokens of each profile, and a probe scans only
   its own prefix, so frequent grams never explode the candidate set;
3. **count filter** — surviving ``(probe, group)`` pairs are checked
   with a sorted-merge overlap count that aborts early once the
   remaining tokens cannot reach the required bound;
4. **verify** — survivors are confirmed with the exact predicate (banded
   edit distance), or, for Jaccard, with exact set arithmetic over the
   already-tokenized profiles — no re-tokenization, no approximation.

Every filter is an upper bound a true match cannot violate, so the
pipeline is *lossless*: ``matches()`` through this engine is exhaustive
by construction, and byte-identical to a full scan.  The engine sits
behind ``REPRO_MATCH_ENGINE`` (see :mod:`repro.relational.columns`);
``indexing/blocking.py`` dispatches to it for pure-similarity premises.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.relational.attribute import is_null
from repro.relational.columns import GLOBAL_TABLE
from repro.relational.relation import Relation
from repro.relational.tuples import CTuple
from repro.similarity.predicates import JoinFilterSpec, SimilarityPredicate, _as_str
from repro.similarity.qgrams import (
    edit_overlap_bound,
    edit_prefix_length,
    jaccard_overlap_bound,
    jaccard_prefix_length,
    jaccard_size_window,
    qgram_multiset_tokens,
    qgram_set,
)

__all__ = ["ProfileCache", "QGramIndex", "ValueGroup"]


class ProfileCache:
    """Memoized q-gram token profiles, :class:`~repro.core.cost.RefCostCache`-style.

    Keys prefer the *canon ref* from the process-wide interning table:
    for strings, canon equality is ``==`` equality and ``==`` strings
    tokenize identically, so one profile serves every occurrence of a
    master value *and* every dirty-side probe that shares it — the
    predicate-call path never re-runs :func:`~repro.similarity.qgrams.qgrams`
    for a string the index has seen.  Values outside the table
    (dict-backed relations, uninterned probes) fall back to keying by
    their ``str()`` form.  ``hits``/``misses`` back the cache tests and
    the benchmark counters.
    """

    __slots__ = ("hits", "misses", "_tokenize", "_by_ref", "_by_str")

    def __init__(self, tokenize):
        self.hits = 0
        self.misses = 0
        self._tokenize = tokenize
        self._by_ref: Dict[int, Tuple[Any, ...]] = {}
        self._by_str: Dict[str, Tuple[Any, ...]] = {}

    def profile(self, value: Any) -> Tuple[Any, ...]:
        """The token profile of *value* (tokenized at most once per
        distinct string)."""
        if isinstance(value, str):
            ref = GLOBAL_TABLE.find_canon(value)
            if ref is not None:
                prof = self._by_ref.get(ref)
                if prof is None:
                    self.misses += 1
                    prof = self._by_ref[ref] = self._tokenize(value)
                else:
                    self.hits += 1
                return prof
            s = value
        else:
            s = str(value)
        prof = self._by_str.get(s)
        if prof is None:
            self.misses += 1
            prof = self._by_str[s] = self._tokenize(s)
        else:
            self.hits += 1
        return prof


class ValueGroup:
    """All master tuples sharing one (exact) compared-attribute value."""

    __slots__ = ("value", "string", "tuples", "tokens")

    def __init__(self, value: Any, string: str, tuples: List[CTuple]):
        self.value = value
        self.string = string
        self.tuples = tuples
        #: Sorted global token ids of the value's q-gram profile.
        self.tokens: array = array("l")


class QGramIndex:
    """A length-bucketed q-gram inverted index over one master attribute.

    Built once per (MD, similarity clause); ``probe_groups`` runs the
    lossless length → prefix → count filter pipeline and
    ``verified_groups`` additionally confirms the driving predicate, so
    its result is exactly the set of distinct master values matching the
    probe.  ``stats`` records probe/candidate/verify counters for the
    benchmark's filter-effectiveness columns.
    """

    def __init__(
        self,
        master: Relation,
        attr: str,
        spec: JoinFilterSpec,
        predicate: SimilarityPredicate,
    ):
        self.attr = attr
        self.spec = spec
        self.predicate = predicate
        if spec.kind == "edit":
            tokenize = lambda s: qgram_multiset_tokens(s, spec.q)  # noqa: E731
        elif spec.kind == "jaccard":
            tokenize = lambda s: tuple(sorted(qgram_set(s, spec.q)))  # noqa: E731
        else:
            raise ValueError(f"unknown join filter kind {spec.kind!r}")
        self.profiles = ProfileCache(tokenize)
        self.stats: Dict[str, int] = {
            "probes": 0,
            "prefix_candidates": 0,
            "count_checks": 0,
            "filter_survivors": 0,
            "verify_calls": 0,
            "verify_matches": 0,
        }
        self.groups: List[ValueGroup] = []
        #: size key -> token id -> gids whose prefix holds the token.
        self._buckets: Dict[int, Dict[int, array]] = {}
        #: size key -> every gid in the bucket (for the no-prune path).
        self._members: Dict[int, List[int]] = {}
        self._token_ids: Dict[Any, int] = {}
        #: Probe-side tokens absent from the master vocabulary get stable
        #: negative ids: globally rarest (they sort first), never present
        #: in any inverted list, but still occupying prefix slots — both
        #: required for the prefix filter's total-order argument.
        self._unknown: Dict[Any, int] = {}
        self._build(master)

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def _value_groups(self, master: Relation) -> List[ValueGroup]:
        """Master tuples grouped by exact attribute value, first-encounter
        order.  Columnar masters group by interned ref (duplicate strings
        index once, no per-tuple dict reads); dict-backed masters group by
        ``(type, value)``."""
        store = master.column_store
        groups: List[ValueGroup] = []
        if store is not None:
            refs = master.column(self.attr)
            by_ref: Dict[int, List[CTuple]] = {}
            for t, ref in zip(master, refs):
                rows = by_ref.get(ref)
                if rows is None:
                    rows = by_ref[ref] = []
                rows.append(t)
            values = store.table.values
            strings = store.table.strings(list(by_ref))
            for (ref, rows), string in zip(by_ref.items(), strings):
                value = values[ref]
                if is_null(value):
                    continue
                groups.append(ValueGroup(value, string, rows))
            return groups
        by_key: Dict[Tuple[type, Any], List[CTuple]] = {}
        keyed: List[Tuple[Any, List[CTuple]]] = []
        for t in master:
            value = t[self.attr]
            if is_null(value):
                continue
            try:
                rows = by_key.get((value.__class__, value))
                if rows is None:
                    rows = by_key[(value.__class__, value)] = []
                    keyed.append((value, rows))
            except TypeError:  # unhashable: own group, no dedup
                rows = []
                keyed.append((value, rows))
            rows.append(t)
        for value, rows in keyed:
            groups.append(ValueGroup(value, _as_str(value), rows))
        return groups

    def _index_prefix_length(self, size: int) -> int:
        spec = self.spec
        if spec.kind == "edit":
            return min(size, edit_prefix_length(spec.edit_budget, spec.q))
        return min(size, max(jaccard_prefix_length(size, spec.threshold), 0))

    def _build(self, master: Relation) -> None:
        self.groups = self._value_groups(master)
        raw: List[Tuple[Any, ...]] = []
        frequency: Dict[Any, int] = {}
        for group in self.groups:
            prof = self.profiles.profile(group.value)
            raw.append(prof)
            for token in prof:
                frequency[token] = frequency.get(token, 0) + 1
        order = sorted(frequency, key=lambda token: (frequency[token], token))
        self._token_ids = {token: i for i, token in enumerate(order)}
        token_ids = self._token_ids
        for gid, (group, prof) in enumerate(zip(self.groups, raw)):
            ids = sorted(token_ids[token] for token in prof)
            group.tokens = array("l", ids)
            size_key = (
                len(group.string) if self.spec.kind == "edit" else len(ids)
            )
            bucket = self._buckets.get(size_key)
            if bucket is None:
                bucket = self._buckets[size_key] = {}
                self._members[size_key] = []
            self._members[size_key].append(gid)
            for token_id in ids[: self._index_prefix_length(len(ids))]:
                postings = bucket.get(token_id)
                if postings is None:
                    postings = bucket[token_id] = array("l")
                postings.append(gid)

    # ------------------------------------------------------------------
    # Probe
    # ------------------------------------------------------------------
    def _encode(self, profile: Tuple[Any, ...]) -> array:
        token_ids = self._token_ids
        unknown = self._unknown
        out = []
        for token in profile:
            token_id = token_ids.get(token)
            if token_id is None:
                token_id = unknown.get(token)
                if token_id is None:
                    token_id = unknown[token] = -1 - len(unknown)
            out.append(token_id)
        out.sort()
        return array("l", out)

    def _admissible(self, string: str, probe_size: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(size_key, required_overlap)`` for every bucket a true
        match of this probe could inhabit."""
        spec = self.spec
        if spec.kind == "edit":
            k, q = spec.edit_budget, spec.q
            length = len(string)
            for size_key in range(max(length - k, 0), length + k + 1):
                yield size_key, edit_overlap_bound(length, size_key, k, q)
            return
        lo, hi = jaccard_size_window(probe_size, spec.threshold)
        if hi - lo + 1 > len(self._members):
            keys: Iterable[int] = [b for b in self._members if lo <= b <= hi]
        else:
            keys = range(lo, hi + 1)
        for size_key in keys:
            yield size_key, jaccard_overlap_bound(probe_size, size_key, spec.threshold)

    @staticmethod
    def _overlap_at_least(a: array, b: array, need: int) -> bool:
        """Whether two sorted token arrays share >= *need* tokens, with an
        early abort once the remainder cannot reach the bound."""
        i = j = shared = 0
        la, lb = len(a), len(b)
        while i < la and j < lb:
            if shared + min(la - i, lb - j) < need:
                return False
            x, y = a[i], b[j]
            if x == y:
                shared += 1
                i += 1
                j += 1
            elif x < y:
                i += 1
            else:
                j += 1
        return shared >= need

    @staticmethod
    def _overlap(a: array, b: array) -> int:
        i = j = shared = 0
        la, lb = len(a), len(b)
        while i < la and j < lb:
            x, y = a[i], b[j]
            if x == y:
                shared += 1
                i += 1
                j += 1
            elif x < y:
                i += 1
            else:
                j += 1
        return shared

    def probe_groups(self, value: Any) -> List[ValueGroup]:
        """Value groups surviving the length/prefix/count filters — a
        guaranteed superset of the true matches, in group-build order."""
        self.stats["probes"] += 1
        string = _as_str(value)
        probe = self._encode(self.profiles.profile(value))
        probe_size = len(probe)
        groups = self.groups
        out: List[int] = []
        for size_key, need in self._admissible(string, probe_size):
            members = self._members.get(size_key)
            if not members:
                continue
            if need <= 0:
                out.extend(members)  # bound cannot prune this size pair
                continue
            sample = groups[members[0]]
            if need > min(probe_size, len(sample.tokens)):
                continue  # overlap bound exceeds either set: impossible
            bucket = self._buckets[size_key]
            seen = set()
            for token_id in probe[: probe_size - need + 1]:
                if token_id < 0:
                    continue  # unknown token: counts toward the prefix,
                    # can never hit an inverted list
                postings = bucket.get(token_id)
                if postings is not None:
                    seen.update(postings)
            self.stats["prefix_candidates"] += len(seen)
            for gid in seen:
                self.stats["count_checks"] += 1
                if self._overlap_at_least(probe, groups[gid].tokens, need):
                    out.append(gid)
        out.sort()
        self.stats["filter_survivors"] += len(out)
        return [groups[gid] for gid in out]

    def verified_groups(self, value: Any) -> List[ValueGroup]:
        """Exactly the value groups whose value satisfies the driving
        predicate against *value* (filter pipeline + exact verification)."""
        survivors = self.probe_groups(value)
        out: List[ValueGroup] = []
        if self.spec.kind == "jaccard":
            # Verify from the indexed gram sets: same integer
            # |intersection| / |union| the predicate computes, without
            # re-tokenizing either side.
            probe = self._encode(self.profiles.profile(value))
            probe_size = len(probe)
            threshold = self.spec.threshold
            for group in survivors:
                self.stats["verify_calls"] += 1
                shared = self._overlap(probe, group.tokens)
                union = probe_size + len(group.tokens) - shared
                similarity = 1.0 if union == 0 else shared / union
                if similarity >= threshold:
                    self.stats["verify_matches"] += 1
                    out.append(group)
            return out
        for group in survivors:
            self.stats["verify_calls"] += 1
            if self.predicate(value, group.value):
                self.stats["verify_matches"] += 1
                out.append(group)
        return out
