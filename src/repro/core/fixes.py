"""Fix bookkeeping: the three accuracy classes and the fix log.

UniClean marks every cell it changes with one of three signs
(Section 3.2): **deterministic** (confidence-based, Section 5),
**reliable** (entropy-based, Section 6) or **possible** (heuristic,
Section 7).  :class:`FixLog` records every change, preserves the latest
mark per cell, and exposes the protected-cell set hRepair must keep
unchanged (Corollary 7.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from repro.constraints.rules import RuleApplication


class FixKind(enum.Enum):
    """Accuracy class of a fix, in decreasing order of accuracy."""

    DETERMINISTIC = "deterministic"
    RELIABLE = "reliable"
    POSSIBLE = "possible"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Fix:
    """One marked cell update.

    Wraps a :class:`~repro.constraints.rules.RuleApplication` (or a
    synthetic update from hRepair's equivalence-class resolution) with its
    accuracy class.
    """

    kind: FixKind
    rule_name: str
    tid: int
    attr: str
    old_value: Any
    new_value: Any
    old_conf: Optional[float]
    new_conf: Optional[float]
    source: Union[str, int]

    @staticmethod
    def from_application(kind: FixKind, application: RuleApplication) -> "Fix":
        """Promote a rule application record into a marked fix."""
        return Fix(
            kind=kind,
            rule_name=application.rule_name,
            tid=application.tid,
            attr=application.attr,
            old_value=application.old_value,
            new_value=application.new_value,
            old_conf=application.old_conf,
            new_conf=application.new_conf,
            source=application.source,
        )

    @property
    def cell(self) -> Tuple[int, str]:
        """The ``(tid, attr)`` cell this fix updates."""
        return (self.tid, self.attr)


class FixLog:
    """Ordered record of all fixes made during a cleaning run.

    The log keeps every fix (a cell may be updated several times across
    phases) and tracks the *latest* mark per cell — the sign the user sees
    in the final repair.
    """

    def __init__(self) -> None:
        self._fixes: List[Fix] = []
        self._latest: Dict[Tuple[int, str], Fix] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, fix: Fix) -> Fix:
        """Append *fix* and update the per-cell mark."""
        self._fixes.append(fix)
        self._latest[fix.cell] = fix
        return fix

    def record_applications(
        self, kind: FixKind, applications: Iterable[RuleApplication]
    ) -> List[Fix]:
        """Record many rule applications under one accuracy class."""
        return [self.record(Fix.from_application(kind, app)) for app in applications]

    def without_tids(self, tids: Set[int]) -> "FixLog":
        """A new log with every fix touching one of *tids* removed.

        Used by :class:`~repro.pipeline.session.CleaningSession` when a
        changeset invalidates the history of the affected tuples: their
        fixes are replayed from scratch, everyone else's survive.  Order
        of the surviving fixes is preserved.
        """
        pruned = FixLog()
        for fix in self._fixes:
            if fix.tid not in tids:
                pruned.record(fix)
        return pruned

    def without_cells(self, cells: Set[Tuple[int, str]]) -> "FixLog":
        """A new log with every fix to one of *cells* removed (the
        cell-granular counterpart of :meth:`without_tids`, used when a
        delta replay re-derives individual perturbed cells)."""
        pruned = FixLog()
        for fix in self._fixes:
            if fix.cell not in cells:
                pruned.record(fix)
        return pruned

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._fixes)

    def __iter__(self) -> Iterator[Fix]:
        return iter(self._fixes)

    def fixes(self, kind: Optional[FixKind] = None) -> List[Fix]:
        """All fixes, optionally filtered by accuracy class."""
        if kind is None:
            return list(self._fixes)
        return [f for f in self._fixes if f.kind is kind]

    def marked_cells(self, kind: Optional[FixKind] = None) -> Set[Tuple[int, str]]:
        """Cells whose *latest* mark has the given class (or any class)."""
        if kind is None:
            return set(self._latest)
        return {cell for cell, fix in self._latest.items() if fix.kind is kind}

    def mark_of(self, tid: int, attr: str) -> Optional[FixKind]:
        """The latest mark of cell ``(tid, attr)``, or ``None``."""
        fix = self._latest.get((tid, attr))
        return fix.kind if fix else None

    def latest_fix(self, tid: int, attr: str) -> Optional[Fix]:
        """The latest fix of cell ``(tid, attr)``, or ``None``."""
        return self._latest.get((tid, attr))

    def deterministic_cells(self) -> Set[Tuple[int, str]]:
        """Cells hRepair must preserve (Corollary 7.1)."""
        return self.marked_cells(FixKind.DETERMINISTIC)

    def counts(self) -> Dict[FixKind, int]:
        """Number of fixes per class (by event, not by cell)."""
        out = {kind: 0 for kind in FixKind}
        for fix in self._fixes:
            out[fix.kind] += 1
        return out

    def cell_counts(self) -> Dict[FixKind, int]:
        """Number of *cells* per latest mark."""
        out = {kind: 0 for kind in FixKind}
        for fix in self._latest.values():
            out[fix.kind] += 1
        return out

    def summary(self) -> str:
        """One-line human-readable summary."""
        cells = self.cell_counts()
        return (
            f"{len(self._fixes)} fixes over {len(self._latest)} cells "
            f"(deterministic={cells[FixKind.DETERMINISTIC]}, "
            f"reliable={cells[FixKind.RELIABLE]}, "
            f"possible={cells[FixKind.POSSIBLE]})"
        )


def rule_statistics(log: FixLog) -> Dict[str, Dict[str, int]]:
    """Per-rule fix statistics: how many fixes each rule contributed.

    Returns ``rule name → {"deterministic": n, "reliable": n,
    "possible": n, "total": n}``, useful for auditing which rules carry a
    cleaning workload (and which are dead weight worth pruning via the
    implication analysis).
    """
    out: Dict[str, Dict[str, int]] = {}
    for fix in log:
        stats = out.setdefault(
            fix.rule_name,
            {kind.value: 0 for kind in FixKind} | {"total": 0},
        )
        stats[fix.kind.value] += 1
        stats["total"] += 1
    return out


def format_fix_report(log: FixLog, limit: int = 0) -> str:
    """A human-readable audit report of a cleaning run.

    Lists per-rule statistics (sorted by contribution) and, when *limit*
    is positive, the first *limit* individual fixes with their provenance.
    """
    lines = [log.summary(), ""]
    stats = rule_statistics(log)
    if stats:
        lines.append("per-rule contribution:")
        for name, row in sorted(stats.items(), key=lambda kv: -kv[1]["total"]):
            lines.append(
                f"  {name}: {row['total']} fixes "
                f"(det={row['deterministic']}, rel={row['reliable']}, "
                f"pos={row['possible']})"
            )
    if limit > 0:
        lines.append("")
        lines.append("fixes:")
        for fix in list(log)[:limit]:
            lines.append(
                f"  [{fix.kind.value:>13}] t{fix.tid}.{fix.attr}: "
                f"{fix.old_value!r} -> {fix.new_value!r}  via {fix.rule_name}"
            )
        if len(log) > limit:
            lines.append(f"  ... ({len(log) - limit} more)")
    return "\n".join(lines)
