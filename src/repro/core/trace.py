"""Fix-order traces: reconstructing a global fix log from shard runs.

Partition-parallel cleaning (:mod:`repro.pipeline.sharding`) runs each
repair phase independently per shard and must then merge the per-shard
fix logs into the *byte-identical* sequence an unsharded run over the
whole relation produces.  Because shards never interact (the shard plan
keeps every variable-CFD group inside one shard, and all other rules are
per-tuple), an unsharded run's fixes restricted to one shard's tuples
are exactly that shard's fixes, in the same relative order — the global
log is some deterministic *interleaving* of the shard logs.  The traces
below capture just enough scheduling structure to replay that
interleaving without re-running any rule logic:

* **cRepair** (:class:`WorklistTrace`) pops a FIFO worklist seeded by an
  initialization pass and extended by each pop's own pushes.  The global
  pop order is the breadth-first order of a forest whose roots are the
  initialization pushes (totally ordered by a content rank: rule index
  and tid) and whose children hang off the pop that pushed them.  Each
  shard records its root ranks plus, per pop, how many children it
  pushed and how many fixes it recorded; :func:`merge_worklist_fixes`
  replays the unified queue.  (Restricted to one shard, global FIFO
  order equals shard-local FIFO order, so when the simulation pops a
  shard token the shard's *next* recorded pop is the right one.)
* **eRepair / hRepair** (:class:`RoundTrace`) run fixpoint rounds over
  rules, draining per-rule work queues whose order is content-derived:
  ascending tid for per-tuple rules, the entropy-AVL key
  ``(H, sort_key(ȳ))`` for eRepair's conflict groups, ascending smallest
  member tid for hRepair's dirty partitions.  A shard stays active in
  exactly the global rounds its own writes dirty (dirtiness never
  crosses shards), so tagging every fix with ``(round, rule index,
  candidate rank)`` makes the global order a stable sort of the
  concatenated shard logs (:func:`merge_round_fixes`).  Candidate ranks
  are unique across shards — tids are disjoint and equal group keys
  imply the same shard — so ties only occur within one candidate of one
  shard, where the recorded order is already correct.

Traces are opt-in (``trace=None`` keeps the phases on their zero-cost
path) and are collected by :class:`~repro.pipeline.session.CleaningSession`
when constructed with ``collect_traces=True``.
"""

from __future__ import annotations

from array import array
from collections import deque
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.core.fixes import Fix

#: A content-derived total order over schedulable work items; tuples of
#: ints/floats/strings only, so ranks compare across processes.
Rank = Tuple


@dataclass
class WorklistTrace:
    """The scheduling skeleton of one cRepair run (see module docstring).

    ``root_ranks`` holds one rank per worklist entry pushed *before* the
    main loop, in push order; ``pops`` holds one ``(children_pushed,
    fixes_recorded)`` pair per pop of the main loop, in pop order.  Every
    push is eventually popped (the queue drains), so
    ``len(pops) == len(root_ranks) + sum(children)``.
    """

    root_ranks: List[Rank] = field(default_factory=list)
    pops: List[Tuple[int, int]] = field(default_factory=list)

    def pack_pops(self) -> Tuple[array, array]:
        """The pop list as two parallel int columns ``(children, fixes)``
        — the wire form used by :mod:`repro.pipeline.payload` (a list of
        2-tuples pickles one opcode pair per pop; arrays pickle as raw
        machine bytes)."""
        return (
            array("i", [children for children, _fixes in self.pops]),
            array("i", [fixes for _children, fixes in self.pops]),
        )

    @staticmethod
    def unpack_pops(
        children: Sequence[int], fixes: Sequence[int]
    ) -> List[Tuple[int, int]]:
        """Inverse of :meth:`pack_pops`."""
        return list(zip(children, fixes))


@dataclass
class RoundTrace:
    """Per-fix scheduling tokens of one eRepair or hRepair run.

    ``tokens[i]`` tags the i-th fix the phase recorded with
    ``(round, rule_index, candidate_rank)``; sorting the union of shard
    logs by token (stably) reproduces the unsharded emission order.
    """

    tokens: List[Rank] = field(default_factory=list)


def merge_worklist_fixes(
    parts: Sequence[Tuple[Sequence[Fix], WorklistTrace]],
) -> List[Fix]:
    """Interleave per-shard cRepair fixes into the global FIFO order.

    *parts* pairs each shard's fix segment (the deterministic fixes it
    recorded, in order) with its :class:`WorklistTrace`.  The unified
    queue starts with all shards' roots merged by rank; popping a shard
    token consumes that shard's next recorded pop, emits its fixes and
    enqueues one token per child it pushed.
    """
    roots: List[Tuple[Rank, int]] = []
    for shard, (_fixes, trace) in enumerate(parts):
        expected = len(trace.root_ranks) + sum(c for c, _f in trace.pops)
        if expected != len(trace.pops):
            raise ValueError(
                f"inconsistent worklist trace for shard {shard}: "
                f"{len(trace.pops)} pops vs {expected} pushes"
            )
        for rank in trace.root_ranks:
            roots.append((rank, shard))
    roots.sort()

    queue = deque(shard for _rank, shard in roots)
    next_pop = [0] * len(parts)
    next_fix = [0] * len(parts)
    out: List[Fix] = []
    while queue:
        shard = queue.popleft()
        fixes, trace = parts[shard]
        children, n_fixes = trace.pops[next_pop[shard]]
        next_pop[shard] += 1
        if n_fixes:
            out.extend(fixes[next_fix[shard] : next_fix[shard] + n_fixes])
            next_fix[shard] += n_fixes
        if children:
            queue.extend([shard] * children)
    for shard, (fixes, _trace) in enumerate(parts):
        if next_fix[shard] != len(fixes):
            raise ValueError(
                f"worklist merge consumed {next_fix[shard]} of "
                f"{len(fixes)} fixes of shard {shard}"
            )
    return out


def merge_round_fixes(
    parts: Sequence[Tuple[Sequence[Fix], RoundTrace]],
) -> List[Fix]:
    """Interleave per-shard round-driven fixes (eRepair/hRepair) into the
    global emission order: a stable sort of the concatenated logs by
    their ``(round, rule, candidate rank)`` tokens."""
    tagged: List[Tuple[Rank, Fix]] = []
    for shard, (fixes, trace) in enumerate(parts):
        if len(fixes) != len(trace.tokens):
            raise ValueError(
                f"round trace of shard {shard} tags {len(trace.tokens)} "
                f"fixes but the segment holds {len(fixes)}"
            )
        tagged.extend(zip(trace.tokens, fixes))
    tagged.sort(key=lambda pair: pair[0])
    return [fix for _token, fix in tagged]
