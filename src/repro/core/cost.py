"""The repair cost model of Section 3.1.

::

    cost(Dr, D) = Σ_{t ∈ D} Σ_{A ∈ attr(R)} t[A].cf · dis_A(t[A], t'[A]) / max(|t[A]|, |t'[A]|)

where ``t'`` is the repair of ``t``, ``dis_A`` is a distance on the domain
of ``A`` (edit distance for strings), ``|v|`` is the size of the value and
``t[A].cf`` the user confidence.  "The higher the confidence of attribute
``t[A]`` is and the more distant ``v'`` is from ``v``, the more costly the
change is" — so heuristic repairing prefers changing low-confidence cells
by small amounts.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.exceptions import DataError
from repro.relational.attribute import is_null
from repro.relational.relation import Relation
from repro.similarity.levenshtein import edit_distance

#: Confidence assumed for cells whose confidence is unavailable.  The
#: NP-hardness construction of Theorem 4.3 assumes "a fixed default
#: confidence cf"; 0.5 keeps unavailable-confidence changes half-priced.
DEFAULT_CONFIDENCE = 0.5


def value_distance(old: Any, new: Any) -> float:
    """Normalized distance ``dis(v, v') / max(|v|, |v'|)`` in ``[0, 1]``.

    Strings use edit distance over the longer length.  ``NULL`` is at
    distance 1 from any non-null value (and 0 from itself) — filling a
    null is maximally "distant" but typically zero-cost because nulls
    carry no confidence.  Non-string values use the discrete metric.
    """
    if is_null(old) and is_null(new):
        return 0.0
    if is_null(old) or is_null(new):
        return 1.0
    if old == new:
        return 0.0
    if isinstance(old, str) and isinstance(new, str):
        longest = max(len(old), len(new))
        if longest == 0:
            return 0.0
        return edit_distance(old, new) / longest
    return 1.0


def cell_cost(old: Any, new: Any, confidence: Optional[float]) -> float:
    """Cost of changing one cell from *old* to *new* under *confidence*."""
    conf = DEFAULT_CONFIDENCE if confidence is None else confidence
    return conf * value_distance(old, new)


class RefCostCache:
    """Memoized :func:`cell_cost` over interned value refs.

    The vectorized hRepair scores each candidate value against every
    mismatching member of an equivalence class; within one class — and
    across classes sharing values — the same ``(old, new, confidence)``
    triple recurs constantly.  Keys are the *exact* refs, not canon refs:
    two ``==``-equal values of different types (``0`` vs ``0.0``) share a
    canon but could in principle behave differently under
    :func:`value_distance`, and the standing invariant is byte-identity
    with the per-value reference path, so nothing coarser than identity
    of the interned instances is assumed.
    """

    __slots__ = ("_table", "_memo")

    def __init__(self, table: Any):
        self._table = table
        self._memo: dict = {}

    def cost(self, old_ref: int, new_ref: int, conf_ref: int) -> float:
        key = (old_ref, new_ref, conf_ref)
        c = self._memo.get(key)
        if c is None:
            vals = self._table.values
            c = self._memo[key] = cell_cost(
                vals[old_ref], vals[new_ref], vals[conf_ref]
            )
        return c


def repair_cost(repaired: Relation, original: Relation) -> float:
    """``cost(Dr, D)``: total weighted distance of the repair.

    Tuples are matched by tid; both relations must share the schema and
    the repair may not add or remove tuples.
    """
    if repaired.schema != original.schema:
        raise DataError("repair and original must share a schema")
    if set(repaired.tids()) != set(original.tids()):
        raise DataError("repair must contain exactly the original tuples (by tid)")
    total = 0.0
    for t in original:
        r = repaired.by_tid(t.tid)  # type: ignore[arg-type]
        for attr in original.schema.names:
            if t[attr] != r[attr]:
                total += cell_cost(t[attr], r[attr], t.conf(attr))
    return total
