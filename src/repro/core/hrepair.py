"""Algorithm ``hRepair``: possible fixes with heuristics (Section 7).

Errors that survive cRepair and eRepair are resolved heuristically so the
final repair ``Dr`` satisfies ``Dr ⊨ Σ`` and ``(Dr, Dm) ⊨ Γ`` while
preserving every deterministic fix (Corollary 7.1).  The method extends
Cong et al. (VLDB 2007): cells carry *equivalence classes* ``eq(t, A)``
with a target value that is either ``'_'`` (free: keep the current value),
a constant, or ``null`` (unresolvable conflict).  Targets only move up the
lattice ``'_' → constant → null`` and classes only merge, which bounds the
number of resolution steps and guarantees termination.

Null semantics (Section 7, SQL simple semantics):

* ``t1[X] = t2[X]`` evaluates to **true** when either side is null — so a
  null never *witnesses* a violation;
* pattern matching ``t[X] ≍ tp[X]`` is **false** on null — so rules do not
  fire from null premises.

Violation resolution:

* **constant CFD** ``(X → A, tp)``: upgrade ``eq(t, A)`` to the pattern
  constant; on conflict with an earlier constant, upgrade to null; when
  the class is frozen by a deterministic fix, break the premise instead by
  nulling the cheapest non-frozen LHS cell.
* **variable CFD** ``(Y → B, tp)``: merge the classes of all B-cells in
  the conflicting group; the merged target is the frozen value if one
  exists, else the group value of minimum repair cost (the cost model of
  Section 3.1); distinct frozen values make the conflict unresolvable for
  the merge, so the premise of the cheapest non-frozen tuple is broken.
* **MD**: upgrade ``eq(t, E)`` to the master value ``s[F]`` (master data
  is authoritative); conflicts with other constants upgrade to null.

The loop re-scans until no violation is resolvable; each resolution merges
classes or upgrades a target, so the measure ``(#classes descending,
#upgrades ascending)`` strictly improves and the process terminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.constraints.cfd import CFD
from repro.constraints.md import MD
from repro.constraints.rules import (
    AnyRule,
    ConstantCFDRule,
    MDRule,
    VariableCFDRule,
    derive_rules,
)
from repro.core.cost import RefCostCache, cell_cost
from repro.core.fixes import Fix, FixKind, FixLog
from repro.core.trace import RoundTrace
from repro.indexing.blocking import MDBlockingIndex
from repro.indexing.group_store import GroupStoreRegistry, cfd_member_tids
from repro.indexing.violation_index import ViolationIndex
from repro.relational import columns as _columns
from repro.relational.attribute import NULL, is_null
from repro.relational.relation import Relation
from repro.relational.tuples import CTuple

Cell = Tuple[int, str]

_FREE = ("_",)
_NULL = ("null",)


def _const(value: Any) -> Tuple[str, Any]:
    return ("const", value)


@dataclass
class HRepairResult:
    """Outcome of an ``hRepair`` run."""

    relation: Relation
    fix_log: FixLog
    possible_fixes: int = 0
    merges: int = 0
    upgrades: int = 0
    unresolved: int = 0
    rounds: int = 0


class _UnionFind:
    """Union-find over cells, with per-root member lists."""

    def __init__(self) -> None:
        self._parent: Dict[Cell, Cell] = {}
        self._members: Dict[Cell, List[Cell]] = {}

    def find(self, cell: Cell) -> Cell:
        if cell not in self._parent:
            self._parent[cell] = cell
            self._members[cell] = [cell]
            return cell
        root = cell
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[cell] != root:  # path compression
            self._parent[cell], cell = root, self._parent[cell]
        return root

    def union(self, a: Cell, b: Cell) -> Cell:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if len(self._members[ra]) < len(self._members[rb]):
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._members[ra].extend(self._members.pop(rb))
        return ra

    def members(self, cell: Cell) -> List[Cell]:
        return self._members[self.find(cell)]


class _HRepair:
    def __init__(
        self,
        relation: Relation,
        rules: Sequence[AnyRule],
        master: Optional[Relation],
        protected: Set[Cell],
        fix_log: FixLog,
        top_l: int,
        use_suffix_tree: bool,
        max_rounds: int,
        use_violation_index: bool = True,
        shared_md_indexes: Optional[Mapping[str, MDBlockingIndex]] = None,
        registry: Optional[GroupStoreRegistry] = None,
        scope_tids: Optional[Sequence[int]] = None,
        scope_cells: Optional[Sequence[Tuple[int, str]]] = None,
        trace: Optional[RoundTrace] = None,
    ):
        self.relation = relation
        self.rules = list(rules)
        self.master = master
        self.protected = protected
        self.fix_log = fix_log
        self.max_rounds = max_rounds
        self.scope_tids = scope_tids
        self.scope_cells = scope_cells
        #: Optional per-fix scheduling tokens for sharded log merging.
        self.trace = trace
        self._token: Optional[Tuple] = None
        if scope_tids is not None and not use_violation_index:
            raise ValueError("scoped (delta-driven) runs require the violation index")
        self.uf = _UnionFind()
        self.targets: Dict[Cell, Tuple] = {}  # root -> target
        #: Lazily built per-run memo of cell costs keyed by interned refs
        #: (vectorized engine only).
        self._cost_cache: Optional[RefCostCache] = None
        self.fixes_made = 0
        self.merges = 0
        self.upgrades = 0
        self.unresolved: Set[Tuple] = set()
        self.rounds = 0

        self.md_indexes: Dict[int, MDBlockingIndex] = {}
        shared = shared_md_indexes or {}
        for idx, rule in enumerate(self.rules):
            if isinstance(rule, MDRule):
                if master is None:
                    raise ValueError(
                        f"rule {rule.name} requires master data, but none was given"
                    )
                self.md_indexes[idx] = shared.get(rule.name) or MDBlockingIndex(
                    rule.md, master, top_l=top_l, use_suffix_tree=use_suffix_tree
                )

        self.vindex: Optional[ViolationIndex] = (
            ViolationIndex(relation, self.rules, registry=registry)
            if use_violation_index
            else None
        )

        # Freeze classes of protected (deterministic) cells at their value.
        for cell in protected:
            tid, attr = cell
            root = self.uf.find(cell)
            self.targets[root] = ("frozen", self.relation.by_tid(tid)[attr])

    def close(self) -> None:
        """Detach the violation index from the relation (idempotent)."""
        if self.vindex is not None:
            self.vindex.detach()

    # ------------------------------------------------------------------
    # Target lattice
    # ------------------------------------------------------------------
    def _target(self, cell: Cell) -> Tuple:
        return self.targets.get(self.uf.find(cell), _FREE)

    def _is_frozen(self, cell: Cell) -> bool:
        return self._target(cell)[0] == "frozen"

    def _set_target(self, cell: Cell, target: Tuple, rule_name: str) -> None:
        """Upgrade the target of *cell*'s class and sync cell values."""
        root = self.uf.find(cell)
        old = self.targets.get(root, _FREE)
        if old == target:
            return
        if old[0] == "frozen":
            raise AssertionError("frozen targets must never be reassigned")
        self.targets[root] = target
        self.upgrades += 1
        self._mark_class_dirty(root)
        self._sync(root, rule_name)

    def _merge(self, cells: Sequence[Cell], target: Tuple, rule_name: str) -> None:
        root = self.uf.find(cells[0])
        for cell in cells[1:]:
            other = self.uf.find(cell)
            if other != root:
                self.merges += 1
                self.targets.pop(other, None)
                self.targets.pop(root, None)
                root = self.uf.union(root, other)
        self.targets[root] = target
        if target[0] != "frozen":
            self.upgrades += 1
        self._mark_class_dirty(root)
        self._sync(root, rule_name)

    def _mark_class_dirty(self, root: Cell) -> None:
        """Queue every cell of a class whose resolution state changed.

        A merge or target upgrade can change how a rule treats a member
        cell even when the cell's *value* stays put (e.g. its class became
        frozen), so value-change notifications alone under-approximate
        dirtiness here.
        """
        if self.vindex is None:
            return
        for tid, attr in self.uf.members(root):
            self.vindex.mark_cell_dirty(tid, attr)

    def _sync(self, root: Cell, rule_name: str) -> None:
        """Reflect a class target into the working relation."""
        target = self.targets.get(root, _FREE)
        if target[0] == "_":
            return
        value = NULL if target[0] == "null" else target[1]
        for tid, attr in self.uf.members(root):
            t = self.relation.by_tid(tid)
            if t[attr] == value:
                continue
            if (tid, attr) in self.protected:
                continue  # defensive; frozen classes keep their value
            self.fix_log.record(
                Fix(
                    kind=FixKind.POSSIBLE,
                    rule_name=rule_name,
                    tid=tid,
                    attr=attr,
                    old_value=t[attr],
                    new_value=value,
                    old_conf=t.conf(attr),
                    new_conf=t.conf(attr),
                    source="heuristic",
                )
            )
            if self.trace is not None:
                assert self._token is not None
                self.trace.tokens.append(self._token)
            self.relation.set_value(t, attr, value)
            self.fixes_made += 1

    # ------------------------------------------------------------------
    # Premise breaking (last resort around frozen conflicts)
    # ------------------------------------------------------------------
    def _break_premise(self, t: CTuple, lhs: Sequence[str], rule_name: str) -> bool:
        """Null the cheapest non-frozen LHS cell so the rule no longer
        applies to *t*.  Returns False when every LHS cell is frozen.

        Free-target cells are preferred; upgrading a const target to null
        is a legal lattice move (constant → null, Cong et al.) and is used
        as a second resort — it nulls the cell's whole equivalence class.
        """
        candidates: List[Tuple[int, float, str]] = []
        for attr in lhs:
            cell = (t.tid, attr)
            if cell in self.protected or self._is_frozen(cell):
                continue
            target = self._target(cell)
            if target[0] == "null":
                continue  # already null — cannot break further here
            rank = 1 if target[0] == "const" else 0
            conf = t.conf(attr)
            candidates.append((rank, conf if conf is not None else 0.0, attr))
        if not candidates:
            return False
        candidates.sort()
        attr = candidates[0][2]
        self._set_target((t.tid, attr), _NULL, rule_name)
        return True

    # ------------------------------------------------------------------
    # Violation scans (null-tolerant semantics)
    # ------------------------------------------------------------------
    def _candidates(self, rule_idx: int):
        """Tuples a per-tuple rule must (re)examine this round: the full
        relation on the legacy path, the drained dirty queue otherwise."""
        if self.vindex is None:
            return iter(self.relation)
        return self.vindex.dirty_tuples(rule_idx)

    def resolve_constant(self, rule_idx: int) -> bool:
        rule = self.rules[rule_idx]
        assert isinstance(rule, ConstantCFDRule)
        rhs = rule.rhs_attr()
        constant = rule.cfd.rhs_constant
        changed = False
        for t in self._candidates(rule_idx):
            if self.trace is not None:
                self._token = (self.rounds, rule_idx, (t.tid,))
            if not rule.cfd.lhs_matches(t):
                continue
            current = t[rhs]
            if not is_null(current) and current == constant:
                continue
            cell = (t.tid, rhs)
            signature = ("c", rule.name, t.tid)
            if signature in self.unresolved:
                continue
            target = self._target(cell)
            if target[0] == "frozen":
                if target[1] == constant:
                    continue
                if not self._break_premise(t, rule.cfd.lhs, rule.name):
                    self.unresolved.add(signature)
                else:
                    changed = True
                continue
            if target[0] == "null":
                continue  # already tombstoned; null satisfies the check
            if target[0] == "const" and target[1] != constant:
                self._set_target(cell, _NULL, rule.name)
            else:
                self._set_target(cell, _const(constant), rule.name)
            changed = True
        return changed

    def resolve_variable(self, rule_idx: int) -> bool:
        rule = self.rules[rule_idx]
        assert isinstance(rule, VariableCFDRule)
        rhs = rule.rhs_attr()
        if _columns.repair_vectorized_for(self.relation):
            return self._resolve_variable_vectorized(rule, rule_idx, rhs)
        changed = False
        if self.vindex is not None:
            by_tid = self.relation.by_tid
            for key in self.vindex.pop_dirty_keys(rule_idx):
                members = self.vindex.members(rule_idx, key)
                if not members:
                    continue
                if self.trace is not None:
                    # Pop order is ascending smallest member tid — the
                    # content rank that interleaves shards' partitions.
                    self._token = (self.rounds, rule_idx, (members[0],))
                group = [by_tid(tid) for tid in members]
                changed |= self._resolve_variable_group(rule, rhs, key, group)
        else:
            groups: Dict[Tuple[Any, ...], List[CTuple]] = {}
            for t in self.relation:
                if rule.cfd.lhs_matches(t):
                    groups.setdefault(t.project(rule.cfd.lhs), []).append(t)
            for key, group in groups.items():
                if self.trace is not None:
                    self._token = (
                        self.rounds,
                        rule_idx,
                        (min(t.tid for t in group),),
                    )
                changed |= self._resolve_variable_group(rule, rhs, key, group)
        return changed

    def _resolve_variable_vectorized(
        self, rule: VariableCFDRule, rule_idx: int, rhs: str
    ) -> bool:
        """The equivalence-class construction of :meth:`resolve_variable`
        over ref columns, with the hot-group prune shared with the
        vectorized check engine.

        With the violation index, each popped dirty partition is pruned
        through its :class:`~repro.indexing.group_store.GroupStats`: a
        cold group (≤ 1 distinct RHS ``==``-class) always makes
        :meth:`_resolve_variable_group` return ``False`` with zero
        observable side effects — no fix, no token, no unresolved entry —
        so skipping it before materializing any tuple is exact.  Without
        the index, the grouping itself comes from a single columnar
        membership scan (:func:`~repro.indexing.group_store.cfd_member_tids`)
        in the reference path's first-encounter order.
        """
        changed = False
        if self.vindex is not None:
            part = self.vindex.partition(rule_idx)
            for key in self.vindex.pop_dirty_keys(rule_idx):
                stats = part.groups.get(key) if part is not None else None
                if stats is None or not stats.tids:
                    continue
                if not stats.is_hot:
                    continue  # cold: provably resolution-free
                member_tids = sorted(stats.tids)
                if self.trace is not None:
                    # Pop order is ascending smallest member tid — the
                    # content rank that interleaves shards' partitions.
                    self._token = (self.rounds, rule_idx, (member_tids[0],))
                changed |= self._resolve_variable_group_refs(
                    rule, rhs, key, member_tids
                )
        else:
            for key, member_tids in cfd_member_tids(
                self.relation, rule.cfd
            ).items():
                if self.trace is not None:
                    self._token = (self.rounds, rule_idx, (min(member_tids),))
                changed |= self._resolve_variable_group_refs(
                    rule, rhs, key, member_tids
                )
        return changed

    def _resolve_variable_group_refs(
        self,
        rule: VariableCFDRule,
        rhs: str,
        key: Tuple[Any, ...],
        member_tids: Sequence[int],
    ) -> bool:
        """Ref-level :meth:`_resolve_variable_group`: membership filter,
        distinct-value collection and null detection run on canon refs
        (canon equality is ``==`` equality), materializing row-views only
        on the rare frozen-conflict premise-breaking path and inside
        ``_sync`` when fixes actually land.  The distinct-value map keeps
        the *first-encountered* ref per canon class, which is exactly the
        instance the reference path's ``set`` retains.
        """
        relation = self.relation
        store = relation.column_store
        table = store.table
        vals = table.values
        canon = table.canon
        null_c = table.null_canon
        data = store.values[store.index_of[rhs]].data
        tuples = relation._tuples
        target = self._target
        # Tombstoned cells (target null) stay null: re-filling them
        # would undo an earlier conflict resolution.
        members: List[int] = []
        rhs_refs: List[int] = []
        for tid in member_tids:
            if target((tid, rhs))[0] != "null":
                members.append(tid)
                rhs_refs.append(data[tuples[tid]._row])
        values_by_canon: Dict[int, int] = {}  # canon -> first-seen ref
        has_free_nulls = False
        for r in rhs_refs:
            c = canon[r]
            if c == null_c:
                has_free_nulls = True
            elif c not in values_by_canon:
                values_by_canon[c] = r
        if len(values_by_canon) < 2 and not (values_by_canon and has_free_nulls):
            return False  # consistent (nulls alone never violate)
        signature = ("v", rule.name, key)
        if signature in self.unresolved:
            return False
        cells = [(tid, rhs) for tid in members]
        frozen_values = {
            self._target(cell)[1] for cell in cells if self._is_frozen(cell)
        }
        if len(frozen_values) > 1:
            # Two deterministic fixes disagree — break the premise of a
            # frozen participant (see _resolve_variable_group).
            broken = False
            by_tid = relation.by_tid
            for tid in sorted(members):
                if self._is_frozen((tid, rhs)):
                    if self._break_premise(by_tid(tid), rule.cfd.lhs, rule.name):
                        broken = True
                        break
            if not broken:
                self.unresolved.add(signature)
                return False
            return True
        if frozen_values:
            # One deterministic value dictates the group (see
            # _resolve_variable_group for why non-frozen members take it
            # as an ordinary const target instead of joining the class).
            value = next(iter(frozen_values))
            frozen_cells = [cell for cell in cells if self._is_frozen(cell)]
            if len(frozen_cells) > 1:
                self._merge(frozen_cells, ("frozen", value), rule.name)
            for cell in cells:
                if self._is_frozen(cell):
                    continue
                tgt = self._target(cell)
                if tgt[0] == "const" and tgt[1] != value:
                    self._set_target(cell, _NULL, rule.name)
                else:
                    self._set_target(cell, _const(value), rule.name)
            return True
        const_targets = {
            self._target(cell)[1]
            for cell in cells
            if self._target(cell)[0] == "const"
        }
        if len(const_targets) > 1:
            merged_target = _NULL
        elif const_targets:
            merged_target = _const(next(iter(const_targets)))
        else:
            merged_target = _const(
                self._cheapest_value_refs(members, rhs_refs, values_by_canon, rhs)
            )
        self._merge(cells, merged_target, rule.name)
        return True

    def _cheapest_value_refs(
        self,
        members: Sequence[int],
        rhs_refs: Sequence[int],
        values_by_canon: Dict[int, int],
        rhs: str,
    ) -> Any:
        """Ref-level :meth:`_cheapest_value` (Section 3.1 cost model).

        Vote counts come from one pass over canon refs (``np.unique``
        for large groups); each candidate's total cost accumulates over
        the members *in member order* through the per-run
        :class:`~repro.core.cost.RefCostCache`, preserving the reference
        path's float addition order bit for bit (the memo only collapses
        repeated ``(old, new, conf)`` ref triples, whose costs are
        identical floats by construction).
        """
        relation = self.relation
        store = relation.column_store
        table = store.table
        vals = table.values
        canon = table.canon
        cache = self._cost_cache
        if cache is None:
            cache = self._cost_cache = RefCostCache(table)
        cost = cache.cost
        conf_data = store.confs[store.index_of[rhs]].data
        tuples = relation._tuples
        conf_refs = [conf_data[tuples[tid]._row] for tid in members]
        n = len(rhs_refs)
        np = _columns.numpy_or_none()
        canons: Sequence[int]
        counts: Dict[int, int]
        if np is not None and n >= 16:
            arr = np.fromiter(
                (canon[r] for r in rhs_refs), dtype=np.int64, count=n
            )
            uniq, cnts = np.unique(arr, return_counts=True)
            counts = dict(zip(uniq.tolist(), cnts.tolist()))
            canons = arr.tolist()
        else:
            canons = [canon[r] for r in rhs_refs]
            counts = {}
            for c in canons:
                counts[c] = counts.get(c, 0) + 1
        best_value = None
        best_key = None
        for cand_canon, cand_ref in sorted(
            values_by_canon.items(), key=lambda kv: repr(vals[kv[1]])
        ):
            value = vals[cand_ref]
            total = 0.0
            for i in range(n):
                if canons[i] != cand_canon:
                    total += cost(rhs_refs[i], cand_ref, conf_refs[i])
            rank = (total, -counts[cand_canon], repr(value))
            if best_key is None or rank < best_key:
                best_key = rank
                best_value = value
        return best_value

    def _resolve_variable_group(
        self,
        rule: VariableCFDRule,
        rhs: str,
        key: Tuple[Any, ...],
        group: Sequence[CTuple],
    ) -> bool:
        """Resolve one conflict group ``Δ(x̄)`` of a variable CFD."""
        # Tombstoned cells (target null) stay null: re-filling them
        # would undo an earlier conflict resolution.
        members = [
            t for t in group if self._target((t.tid, rhs))[0] != "null"
        ]
        values = {t[rhs] for t in members if not is_null(t[rhs])}
        has_free_nulls = any(is_null(t[rhs]) for t in members)
        if len(values) < 2 and not (values and has_free_nulls):
            return False  # consistent (nulls alone never violate)
        signature = ("v", rule.name, key)
        if signature in self.unresolved:
            return False
        cells = [(t.tid, rhs) for t in members]
        frozen_values = {
            self._target(cell)[1] for cell in cells if self._is_frozen(cell)
        }
        if len(frozen_values) > 1:
            # Two deterministic fixes disagree — the merge is
            # impossible.  Dissolve the conflict by breaking the
            # premise of one of the *frozen participants*: null a
            # non-frozen LHS cell of a frozen tuple so it leaves the
            # group (breaking an uninvolved tuple's premise would not
            # remove the violation).
            broken = False
            for t in sorted(members, key=lambda x: x.tid or 0):
                if self._is_frozen((t.tid, rhs)):
                    if self._break_premise(t, rule.cfd.lhs, rule.name):
                        broken = True
                        break
            if not broken:
                self.unresolved.add(signature)
                return False
            return True
        if frozen_values:
            # One deterministic value dictates the group.  Only the cells
            # already rooted in frozen (protected) classes join the frozen
            # class; the remaining members take the value as an ordinary
            # *const* target.  Merging them in would freeze them by
            # contagion, and a later conflict between two frozen groups
            # could then find no premise to break — losing the Dr ⊨ Σ
            # guarantee of Corollary 7.1.  Const-targeted cells stay
            # null-upgradable, which is all that guarantee needs.
            value = next(iter(frozen_values))
            frozen_cells = [cell for cell in cells if self._is_frozen(cell)]
            if len(frozen_cells) > 1:
                self._merge(frozen_cells, ("frozen", value), rule.name)
            for cell in cells:
                if self._is_frozen(cell):
                    continue
                tgt = self._target(cell)
                if tgt[0] == "const" and tgt[1] != value:
                    self._set_target(cell, _NULL, rule.name)
                else:
                    self._set_target(cell, _const(value), rule.name)
            return True
        const_targets = {
            self._target(cell)[1]
            for cell in cells
            if self._target(cell)[0] == "const"
        }
        if len(const_targets) > 1:
            target = _NULL
        elif const_targets:
            target = _const(next(iter(const_targets)))
        else:
            target = _const(self._cheapest_value(members, rhs, values))
        self._merge(cells, target, rule.name)
        return True

    def _cheapest_value(self, group: Sequence[CTuple], rhs: str, values: Set[Any]) -> Any:
        """The group value minimizing total repair cost (Section 3.1).

        Cost ties (common when confidences are zero) break towards the
        *most frequent* value — the majority heuristic — then towards the
        lexicographically smallest for determinism.
        """
        counts: Dict[Any, int] = {}
        for t in group:
            counts[t[rhs]] = counts.get(t[rhs], 0) + 1
        best_value = None
        best_key = None
        for value in sorted(values, key=repr):
            total = 0.0
            for t in group:
                if t[rhs] != value:
                    total += cell_cost(t[rhs], value, t.conf(rhs))
            key = (total, -counts.get(value, 0), repr(value))
            if best_key is None or key < best_key:
                best_key = key
                best_value = value
        return best_value

    def resolve_md(self, rule_idx: int) -> bool:
        rule = self.rules[rule_idx]
        assert isinstance(rule, MDRule)
        rhs, master_attr = rule.md.rhs_pair
        index = self.md_indexes[rule_idx]
        matches = index.cached_matches if self.vindex is not None else index.matches
        changed = False
        for t in self._candidates(rule_idx):
            if self.trace is not None:
                self._token = (self.rounds, rule_idx, (t.tid,))
            # All premise-satisfying master tuples place a demand on t[E];
            # a single match dictates a constant, conflicting matches are
            # resolved with null (which satisfies the null-tolerant check).
            demanded = sorted(
                {s[master_attr] for s in matches(t)}, key=repr
            )
            if not demanded:
                continue
            current = t[rhs]
            if len(demanded) == 1 and not is_null(current) and current == demanded[0]:
                continue
            if is_null(current):
                if len(demanded) > 1 or self._target((t.tid, rhs))[0] == "null":
                    continue  # null already satisfies every demand
            cell = (t.tid, rhs)
            signature = ("m", rule.name, t.tid)
            if signature in self.unresolved:
                continue
            target = self._target(cell)
            if target[0] == "frozen":
                if len(demanded) == 1 and target[1] == demanded[0]:
                    continue
                if not self._break_premise(t, rule.md.lhs_attrs(), rule.name):
                    self.unresolved.add(signature)
                else:
                    changed = True
                continue
            if len(demanded) > 1:
                if target[0] != "null":
                    self._set_target(cell, _NULL, rule.name)
                    changed = True
                continue
            value = demanded[0]
            if target[0] == "null":
                continue
            if target[0] == "const" and target[1] != value:
                self._set_target(cell, _NULL, rule.name)
            else:
                self._set_target(cell, _const(value), rule.name)
            changed = True
        return changed

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self) -> None:
        if self.vindex is not None:
            # Round 1: the delta scope when given, everything otherwise.
            self.vindex.seed_dirty(self.scope_cells, self.scope_tids)
        while self.rounds < self.max_rounds:
            self.rounds += 1
            changed = False
            for idx, rule in enumerate(self.rules):
                if isinstance(rule, ConstantCFDRule):
                    changed |= self.resolve_constant(idx)
                elif isinstance(rule, VariableCFDRule):
                    changed |= self.resolve_variable(idx)
                else:
                    changed |= self.resolve_md(idx)
            if not changed:
                break


# ----------------------------------------------------------------------
# Null-tolerant satisfaction checks (the guarantee of Corollary 7.1)
# ----------------------------------------------------------------------
def cfd_satisfied_with_nulls(relation: Relation, cfd: CFD) -> bool:
    """``D ⊨ φ`` under the simple SQL null semantics of Section 7.

    A tuple with a null in the pattern scope never matches the pattern;
    value comparisons involving null evaluate to true.
    """
    for normalized in cfd.normalize():
        rhs = normalized.rhs_attr
        if normalized.is_constant:
            for t in relation:
                if not normalized.lhs_matches(t):
                    continue
                if not is_null(t[rhs]) and t[rhs] != normalized.rhs_constant:
                    return False
        else:
            groups: Dict[Tuple[Any, ...], Set[Any]] = {}
            for t in relation:
                if not normalized.lhs_matches(t):
                    continue
                if is_null(t[rhs]):
                    continue
                groups.setdefault(t.project(normalized.lhs), set()).add(t[rhs])
            for values in groups.values():
                if len(values) > 1:
                    return False
    return True


def md_satisfied_with_nulls(relation: Relation, master: Relation, md: MD) -> bool:
    """``(D, Dm) ⊨ ψ`` with null counting as identified (Section 7).

    Master tuples are bucketed on the equality premise attributes, so
    expensive similarity predicates only run within matching buckets.
    """
    from repro.indexing.blocking import ExactIndex

    for normalized in md.normalize():
        rhs, master_attr = normalized.rhs_pair
        eq_clauses = [c for c in normalized.premise if c.is_equality]
        if eq_clauses:
            index = ExactIndex(master, [c.master_attr for c in eq_clauses])
            data_attrs = [c.attr for c in eq_clauses]
            for t in relation:
                if is_null(t[rhs]):
                    continue
                key = t.project(data_attrs)
                if any(is_null(v) for v in key):
                    continue
                for s in index.lookup(key):
                    if normalized.premise_holds(t, s) and t[rhs] != s[master_attr]:
                        return False
        else:
            for t in relation:
                if is_null(t[rhs]):
                    continue
                for s in master:
                    if normalized.premise_holds(t, s) and t[rhs] != s[master_attr]:
                        return False
    return True


def is_clean(
    relation: Relation,
    cfds: Sequence[CFD],
    mds: Sequence[MD] = (),
    master: Optional[Relation] = None,
) -> bool:
    """Whether *relation* satisfies Σ and Γ under null-tolerant semantics."""
    for cfd in cfds:
        if not cfd_satisfied_with_nulls(relation, cfd):
            return False
    if master is not None:
        for md in mds:
            if not md_satisfied_with_nulls(relation, master, md):
                return False
    return True


def hrepair(
    relation: Relation,
    cfds: Sequence[CFD] = (),
    mds: Sequence[MD] = (),
    master: Optional[Relation] = None,
    protected: Optional[Set[Cell]] = None,
    fix_log: Optional[FixLog] = None,
    top_l: int = 20,
    use_suffix_tree: bool = True,
    in_place: bool = False,
    max_rounds: int = 100,
    use_violation_index: bool = True,
    md_indexes: Optional[Mapping[str, MDBlockingIndex]] = None,
    registry: Optional[GroupStoreRegistry] = None,
    scope_tids: Optional[Sequence[int]] = None,
    scope_cells: Optional[Sequence[Tuple[int, str]]] = None,
    trace: Optional[RoundTrace] = None,
) -> HRepairResult:
    """Produce a consistent repair with heuristic *possible* fixes.

    Finds a repair ``Dr`` with ``Dr ⊨ Σ`` and ``(Dr, Dm) ⊨ Γ`` (under
    Section 7's null semantics) that preserves all *protected*
    (deterministic) cells — Corollary 7.1.

    ``use_violation_index=False`` selects the legacy full-rescan baseline
    (byte-identical fix logs, asymptotically slower); *md_indexes* lets
    the pipeline share pre-built master-side blocking indexes by rule
    name.  *registry* supplies session-owned shared group stores;
    *scope_tids* restricts round 1 to an influence-closed dirty scope
    (the delta-driven mode of
    :class:`~repro.pipeline.session.CleaningSession`).
    """
    working = relation if in_place else relation.clone()
    log = fix_log if fix_log is not None else FixLog()
    rules = derive_rules(cfds, mds)
    state = _HRepair(
        working,
        rules,
        master,
        protected=protected or set(),
        fix_log=log,
        top_l=top_l,
        use_suffix_tree=use_suffix_tree,
        max_rounds=max_rounds,
        use_violation_index=use_violation_index,
        shared_md_indexes=md_indexes,
        registry=registry,
        scope_tids=scope_tids,
        scope_cells=scope_cells,
        trace=trace,
    )
    try:
        state.run()
    finally:
        state.close()
    return HRepairResult(
        relation=working,
        fix_log=log,
        possible_fixes=state.fixes_made,
        merges=state.merges,
        upgrades=state.upgrades,
        unresolved=len(state.unresolved),
        rounds=state.rounds,
    )
