"""Algorithm ``eRepair``: reliable fixes from entropy (Section 6).

For attributes whose confidence is low or unavailable, UniClean infers
evidence from the data itself: a variable CFD's conflict group ``Δ(ȳ)`` is
resolved to its majority value when the entropy ``H(φ|Y=ȳ)`` falls below
the threshold δ2 — the lower the entropy, the more certain the resolution.
Constant-CFD and MD rules are applied unconditionally (their target value
is dictated by the pattern constant / master data), subject to the update
threshold δ1 that stops oscillating cells ("if t[B] has been changed less
than δ1 times ... by rules that may not converge on its value").

The algorithm (Fig. 6):

1. sort the cleaning rules by the dependency graph (SCC condensation +
   out/in-degree ratio, Section 6.2);
2. repeatedly apply the rules in that order via ``vCFDResolve`` /
   ``cCFDResolve`` / ``MDResolve`` until a full pass changes nothing.

Deterministic fixes from cRepair are protected and never overwritten.
Complexity: O(δ1·|D|²·|Σ| + δ1·k·|D|²·size(Γ)) in the paper's analysis;
the 2-in-1 entropy structure (Section 6.3) keeps per-fix maintenance at
O(log |D|) per index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.dependency_graph import order_rules
from repro.constraints.cfd import CFD
from repro.constraints.md import MD
from repro.constraints.rules import (
    AnyRule,
    ConstantCFDRule,
    MDRule,
    VariableCFDRule,
    derive_rules,
)
from repro.core.fixes import Fix, FixKind, FixLog
from repro.core.trace import RoundTrace
from repro.indexing.blocking import MDBlockingIndex
from repro.indexing.entropy_index import EntropyIndex
from repro.indexing.group_store import GroupStoreRegistry, sort_key
from repro.indexing.violation_index import ViolationIndex
from repro.relational import columns as _columns
from repro.relational.relation import Relation
from repro.relational.tuples import CTuple


@dataclass
class ERepairResult:
    """Outcome of an ``eRepair`` run."""

    relation: Relation
    fix_log: FixLog
    reliable_fixes: int = 0
    rounds: int = 0


class _ERepair:
    def __init__(
        self,
        relation: Relation,
        rules: Sequence[AnyRule],
        master: Optional[Relation],
        delta1: int,
        delta2: float,
        protected: Set[Tuple[int, str]],
        fix_log: FixLog,
        top_l: int,
        use_suffix_tree: bool,
        use_violation_index: bool = True,
        shared_md_indexes: Optional[Mapping[str, MDBlockingIndex]] = None,
        registry: Optional[GroupStoreRegistry] = None,
        scope_tids: Optional[Sequence[int]] = None,
        scope_cells: Optional[Sequence[Tuple[int, str]]] = None,
        trace: Optional[RoundTrace] = None,
    ):
        self.relation = relation
        self.master = master
        self.delta1 = delta1
        self.delta2 = delta2
        self.protected = protected
        self.fix_log = fix_log
        self.scope_tids = scope_tids
        self.scope_cells = scope_cells
        #: Optional per-fix scheduling tokens for sharded log merging.
        self.trace = trace
        self._token: Optional[Tuple] = None
        self.change_count: Dict[Tuple[int, str], int] = {}
        self.fixes_made = 0
        self.rounds = 0
        self._top_l = top_l
        self._use_suffix_tree = use_suffix_tree
        self._use_violation_index = use_violation_index
        self._registry = registry
        self._shared_md_indexes = dict(shared_md_indexes or {})
        if scope_tids is not None and not use_violation_index:
            raise ValueError("scoped (delta-driven) runs require the violation index")
        self.rules: List[AnyRule] = []
        self.entropy_indexes: List[EntropyIndex] = []
        self.md_indexes: Dict[int, MDBlockingIndex] = {}
        self.index_by_rule: Dict[int, EntropyIndex] = {}
        self.vindex: Optional[ViolationIndex] = None
        self.rebind_rules(order_rules(rules))

    def rebind_rules(self, rules: Sequence[AnyRule]) -> None:
        """(Re)build all per-rule indexes for *rules* in the given order.

        Used at construction and by the ordering ablation, which re-runs
        the engine with a different rule order: dirty state and index
        maps are keyed by rule position, so they must be rebuilt
        together.
        """
        self.close()
        self.rules = list(rules)
        self.entropy_indexes = []
        self.md_indexes = {}
        for idx, rule in enumerate(self.rules):
            if isinstance(rule, VariableCFDRule):
                if self._registry is not None:
                    # Shared store: the entropy stats ride the grouping the
                    # registry already maintains — the view only carries
                    # the AVL, and no extra relation observer is needed.
                    self.entropy_indexes.append(
                        EntropyIndex(rule.cfd, store=self._registry.cfd_store(rule.cfd))
                    )
                else:
                    self.entropy_indexes.append(EntropyIndex(rule.cfd, self.relation))
            elif isinstance(rule, MDRule):
                if self.master is None:
                    raise ValueError(
                        f"rule {rule.name} requires master data, but none was given"
                    )
                self.md_indexes[idx] = self._shared_md_indexes.get(
                    rule.name
                ) or MDBlockingIndex(
                    rule.md,
                    self.master,
                    top_l=self._top_l,
                    use_suffix_tree=self._use_suffix_tree,
                )
        self.index_by_rule = {}
        position = 0
        for idx, rule in enumerate(self.rules):
            if isinstance(rule, VariableCFDRule):
                self.index_by_rule[idx] = self.entropy_indexes[position]
                position += 1

        # The indexed rule engine: dirty-partition work queues so each
        # round only revisits tuples touched since the rule last ran.
        self.vindex = (
            ViolationIndex(self.relation, self.rules, registry=self._registry)
            if self._use_violation_index
            else None
        )
        if self._registry is None:
            for entropy_index in self.entropy_indexes:
                self.relation.add_observer(entropy_index.on_cell_changed)

    def close(self) -> None:
        """Detach all observers from the relation (idempotent)."""
        if self.vindex is not None:
            self.vindex.detach()
        for entropy_index in self.entropy_indexes:
            if self._registry is None:
                self.relation.remove_observer(entropy_index.on_cell_changed)
            entropy_index.detach()

    # ------------------------------------------------------------------
    # Cell mutation with index maintenance and bookkeeping
    # ------------------------------------------------------------------
    def _may_change(self, t: CTuple, attr: str) -> bool:
        return self._may_change_cell(t.tid, attr)

    def _may_change_cell(self, tid: Optional[int], attr: str) -> bool:
        cell = (tid, attr)
        if cell in self.protected:
            return False
        return self.change_count.get(cell, 0) < self.delta1

    def _set_value(self, t: CTuple, attr: str, value: Any, rule_name: str, source) -> bool:
        """Apply one reliable fix; returns whether a change was made."""
        if t[attr] == value:
            return False
        cell = (t.tid, attr)
        self.fix_log.record(
            Fix(
                kind=FixKind.RELIABLE,
                rule_name=rule_name,
                tid=t.tid if t.tid is not None else -1,
                attr=attr,
                old_value=t[attr],
                new_value=value,
                old_conf=t.conf(attr),
                new_conf=t.conf(attr),
                source=source,
            )
        )
        if self.trace is not None:
            assert self._token is not None
            self.trace.tokens.append(self._token)
        # set_value notifies the entropy indexes and the violation index,
        # which queues the touched partitions for the next round.
        self.relation.set_value(t, attr, value)
        self.change_count[cell] = self.change_count.get(cell, 0) + 1
        self.fixes_made += 1
        return True

    # ------------------------------------------------------------------
    # Procedures vCFDResolve / cCFDResolve / MDResolve (Section 6.2)
    # ------------------------------------------------------------------
    def vcfd_resolve(self, rule_idx: int) -> bool:
        """Resolve low-entropy conflict groups to their majority value."""
        rule = self.rules[rule_idx]
        assert isinstance(rule, VariableCFDRule)
        index = self.index_by_rule[rule_idx]
        rhs = rule.rhs_attr()
        changed = False
        # Snapshot keys first: resolving mutates the index.  With the
        # violation index, only partitions dirtied since this rule last
        # ran are candidates — an unchanged group resolves (or fails to)
        # exactly as it did before, so skipping it loses nothing.  The
        # AVL (entropy, key) iteration order is preserved either way.
        if self.vindex is not None:
            dirty = set(self.vindex.pop_dirty_keys(rule_idx))
            candidates = [
                (group.key, group.entropy)
                for group in index.conflicting_groups()
                if group.entropy < self.delta2 and group.key in dirty
            ]
        else:
            candidates = [
                (group.key, group.entropy)
                for group in index.conflicting_groups()
                if group.entropy < self.delta2
            ]
        vectorized = _columns.repair_vectorized_for(self.relation)
        for key, snapshot_entropy in candidates:
            if self.trace is not None:
                # The AVL ordering key at snapshot time — the content rank
                # that positions this group among all shards' candidates.
                self._token = (
                    self.rounds,
                    rule_idx,
                    (snapshot_entropy, tuple(sort_key(v) for v in key)),
                )
            group = index.group(key)
            if group is None or group.entropy == 0.0:
                continue  # already resolved as a side effect
            if not (group.entropy < self.delta2):
                continue
            majority_value, _count = group.majority()
            if vectorized:
                changed |= self._apply_majority_columnar(
                    rule, rhs, group, majority_value
                )
                continue
            for tid in sorted(group.tids):
                t = self.relation.by_tid(tid)
                if t[rhs] == majority_value:
                    continue
                if not self._may_change(t, rhs):
                    continue
                changed |= self._set_value(t, rhs, majority_value, rule.name, "entropy")
        return changed

    def _apply_majority_columnar(
        self, rule: VariableCFDRule, rhs: str, group: Any, majority_value: Any
    ) -> bool:
        """The member scan of one low-entropy group at the ref level.

        Mismatching members are found by comparing canon refs against the
        majority value's canon (canon equality is ``==`` equality), with
        a numpy compare for large groups; tuples materialize only at
        mismatch positions.  Byte-identical to the per-tuple loop: the
        snapshot of RHS refs taken here equals the reference path's live
        reads because each fix rewrites only its own tuple's RHS cell,
        and mismatches are visited in the same sorted-tid order with the
        same ``_may_change`` gate.
        """
        relation = self.relation
        store = relation.column_store
        table = store.table
        tids = sorted(group.tids)
        data = store.values[store.index_of[rhs]].data
        tuples = relation._tuples
        refs = [data[tuples[tid]._row] for tid in tids]
        try:
            want = table.find_canon(majority_value)
        except TypeError:  # pragma: no cover - counter keys are hashable
            want = None
        canon = table.canon
        if want is None:
            # No table-resident value compares equal: every member is a
            # mismatch.
            positions: Sequence[int] = range(len(tids))
        else:
            np = _columns.numpy_or_none()
            if np is not None and len(refs) >= 32:
                canons = np.fromiter(
                    (canon[r] for r in refs), dtype=np.int64, count=len(refs)
                )
                positions = np.nonzero(canons != want)[0].tolist()
            else:
                positions = [i for i, r in enumerate(refs) if canon[r] != want]
        changed = False
        by_tid = relation.by_tid
        for pos in positions:
            tid = tids[pos]
            if not self._may_change_cell(tid, rhs):
                continue
            t = by_tid(tid)
            changed |= self._set_value(t, rhs, majority_value, rule.name, "entropy")
        return changed

    def _candidates(self, rule_idx: int):
        """Tuples a per-tuple rule must (re)examine this round: the full
        relation on the legacy path, the drained dirty queue otherwise."""
        if self.vindex is None:
            return iter(self.relation)
        return self.vindex.dirty_tuples(rule_idx)

    def ccfd_resolve(self, rule_idx: int) -> bool:
        """Apply a constant-CFD rule to every pattern-matching tuple."""
        rule = self.rules[rule_idx]
        assert isinstance(rule, ConstantCFDRule)
        rhs = rule.rhs_attr()
        constant = rule.cfd.rhs_constant
        changed = False
        for t in self._candidates(rule_idx):
            if self.trace is not None:
                self._token = (self.rounds, rule_idx, (t.tid,))
            if not rule.cfd.lhs_matches(t):
                continue
            if t[rhs] == constant:
                continue
            if not self._may_change(t, rhs):
                continue
            changed |= self._set_value(t, rhs, constant, rule.name, "pattern")
        return changed

    def md_resolve(self, rule_idx: int) -> bool:
        """Apply an MD rule: copy master values into matching tuples."""
        rule = self.rules[rule_idx]
        assert isinstance(rule, MDRule)
        rhs, master_attr = rule.md.rhs_pair
        index = self.md_indexes[rule_idx]
        find_match = index.cached_find_match if self.vindex is not None else index.find_match
        changed = False
        for t in self._candidates(rule_idx):
            if self.trace is not None:
                self._token = (self.rounds, rule_idx, (t.tid,))
            match = find_match(t)
            if match is None:
                continue
            value = match[master_attr]
            if t[rhs] == value:
                continue
            if not self._may_change(t, rhs):
                continue
            changed |= self._set_value(t, rhs, value, rule.name, "master")
        return changed

    # ------------------------------------------------------------------
    # Main loop (Fig. 6)
    # ------------------------------------------------------------------
    def run(self) -> None:
        if self.vindex is not None:
            # Round 1: the delta scope when given, everything otherwise.
            self.vindex.seed_dirty(self.scope_cells, self.scope_tids)
        while True:
            self.rounds += 1
            changed = False
            for idx, rule in enumerate(self.rules):
                if isinstance(rule, VariableCFDRule):
                    changed |= self.vcfd_resolve(idx)
                elif isinstance(rule, ConstantCFDRule):
                    changed |= self.ccfd_resolve(idx)
                else:
                    changed |= self.md_resolve(idx)
            if not changed:
                break


def erepair(
    relation: Relation,
    cfds: Sequence[CFD] = (),
    mds: Sequence[MD] = (),
    master: Optional[Relation] = None,
    delta1: int = 3,
    delta2: float = 0.8,
    protected: Optional[Set[Tuple[int, str]]] = None,
    fix_log: Optional[FixLog] = None,
    top_l: int = 20,
    use_suffix_tree: bool = True,
    in_place: bool = False,
    use_violation_index: bool = True,
    md_indexes: Optional[Mapping[str, MDBlockingIndex]] = None,
    registry: Optional[GroupStoreRegistry] = None,
    scope_tids: Optional[Sequence[int]] = None,
    scope_cells: Optional[Sequence[Tuple[int, str]]] = None,
    trace: Optional[RoundTrace] = None,
) -> ERepairResult:
    """Find reliable (entropy-based) fixes in *relation* (Section 6).

    Parameters
    ----------
    relation:
        The (partially repaired) relation; cloned unless ``in_place``.
    delta1:
        Update threshold δ1: the maximum number of times a cell may be
        rewritten before eRepair stops touching it.
    delta2:
        Entropy threshold δ2: only groups with ``H(φ|Y=ȳ) < δ2`` are
        resolved; smaller values mean stricter (more reliable) fixes.
    protected:
        Cells that must not change (the deterministic fixes of cRepair).
    use_violation_index:
        Drive resolution rounds from the incremental
        :class:`~repro.indexing.violation_index.ViolationIndex` instead
        of full-relation rescans.  ``False`` is the legacy-scan baseline;
        both paths produce byte-identical fix logs.
    md_indexes:
        Optional pre-built blocking indexes (rule name →
        :class:`MDBlockingIndex`), shared across phases by the pipeline
        so master-side structures are built once.
    registry:
        Optional session-owned
        :class:`~repro.indexing.group_store.GroupStoreRegistry`; shared
        group stores back both the violation index and the entropy
        indexes (one observer traversal per cell change for both).
    scope_tids:
        When given, seed round 1 with only these tuples instead of the
        whole relation — the delta-driven mode of
        :class:`~repro.pipeline.session.CleaningSession`.  The scope must
        be influence-closed; requires the violation index.
    """
    working = relation if in_place else relation.clone()
    log = fix_log if fix_log is not None else FixLog()
    rules = derive_rules(cfds, mds)
    state = _ERepair(
        working,
        rules,
        master,
        delta1=delta1,
        delta2=delta2,
        protected=protected or set(),
        fix_log=log,
        top_l=top_l,
        use_suffix_tree=use_suffix_tree,
        use_violation_index=use_violation_index,
        shared_md_indexes=md_indexes,
        registry=registry,
        scope_tids=scope_tids,
        scope_cells=scope_cells,
        trace=trace,
    )
    try:
        state.run()
    finally:
        state.close()
    return ERepairResult(
        relation=working,
        fix_log=log,
        reliable_fixes=state.fixes_made,
        rounds=state.rounds,
    )
