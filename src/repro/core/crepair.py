"""Algorithm ``cRepair``: deterministic fixes from confidence (Section 5).

Given CFDs Σ, MDs Γ, master data ``Dm``, dirty data ``D`` and a confidence
threshold η, ``cRepair`` finds every *deterministic fix* — a correction
derived from attributes asserted correct (confidence ≥ η) — and returns a
partial repair with those fixes marked.  The paper's Theorem 5.1: all
deterministic fixes can be found in ``O(|D||Dm| size(Θ))`` time, reduced
to ``O(|D| size(Θ))`` with the indexing of Section 5.2.

The implementation follows Figs. 4–5 directly:

* per-tuple rule queues ``Q[t]`` holding rules whose premise attributes
  are all asserted;
* counters ``count[t, ξ]`` of currently asserted premise attributes;
* hash tables ``Hφ`` per variable CFD: for each pattern-matching LHS value
  ``ȳ``, the waiting list of premise-asserted tuples and the unique
  asserted RHS value ``val`` (or ``nil``);
* hash sets ``P[t]`` of variable CFDs t is waiting on;
* ``update`` propagates each newly asserted attribute, re-arming rules —
  the deterministic-fix process is recursive (Section 5.1).

Fix semantics per Section 5.1: a rule fires on ``t`` only when every
premise attribute is asserted and the target attribute is *not* (an
asserted target is never overwritten, even on conflict — such conflicts
are left to the later phases).  A target equal to the derived value is
*confirmed*: its confidence is upgraded to η (enabling further inference)
but no fix is recorded.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.constraints.cfd import CFD
from repro.constraints.md import MD
from repro.constraints.rules import (
    AnyRule,
    ConstantCFDRule,
    MDRule,
    VariableCFDRule,
    derive_rules,
)
from repro.core.fixes import Fix, FixKind, FixLog
from repro.core.trace import WorklistTrace
from repro.indexing.blocking import MDBlockingIndex
from repro.indexing.group_store import GroupStoreRegistry
from repro.indexing.violation_index import ViolationIndex
from repro.relational import columns as _columns
from repro.relational.columns import ColumnTuple
from repro.relational.relation import Relation
from repro.relational.tuples import CTuple


class _VarEntry:
    """One ``Hφ(ȳ)`` entry: waiting list and the unique asserted value."""

    __slots__ = ("waiting", "waiting_tids", "val")

    def __init__(self) -> None:
        self.waiting: List[CTuple] = []
        self.waiting_tids: Set[int] = set()
        self.val: Optional[Any] = None


@dataclass
class CRepairResult:
    """Outcome of a ``cRepair`` run."""

    relation: Relation
    fix_log: FixLog
    deterministic_fixes: int = 0
    confirmed_cells: int = 0
    rules_fired: int = 0
    #: Scoped (delta-driven) runs only: cells of out-of-scope tuples that
    #: a group-value provision would deterministically fix — the scope
    #: was too small and the session must replay with them included.
    escaped_cells: Set[Tuple[int, str]] = field(default_factory=set)

    @property
    def fixed_cells(self) -> Set[Tuple[int, str]]:
        """Cells carrying a deterministic mark."""
        return self.fix_log.deterministic_cells()


class _CRepair:
    """Mutable state of one cRepair run (Fig. 4)."""

    def __init__(
        self,
        relation: Relation,
        rules: Sequence[AnyRule],
        master: Optional[Relation],
        eta: float,
        fix_log: FixLog,
        top_l: int,
        use_suffix_tree: bool,
        use_violation_index: bool = True,
        shared_md_indexes: Optional[Mapping[str, MDBlockingIndex]] = None,
        registry: Optional["GroupStoreRegistry"] = None,
        scope_tids: Optional[Sequence[int]] = None,
        trace: Optional[WorklistTrace] = None,
    ):
        self.relation = relation
        self.rules = list(rules)
        self.eta = eta
        self.fix_log = fix_log
        self.master = master
        self.scope_tids = scope_tids
        #: Optional scheduling trace for partition-parallel log merging.
        self.trace = trace
        self._looping = False  # pushes before the main loop are roots
        self._root_rank: Optional[Tuple] = None
        self._children = 0
        self.scope_set: Optional[Set[int]] = (
            set(scope_tids) if scope_tids is not None else None
        )
        self.escaped: Set[Tuple[int, str]] = set()
        self.result_fixes = 0
        self.confirmed = 0
        self.fired = 0

        # Indexes rules by the data-side attributes they consume.
        self.rules_by_lhs_attr: Dict[str, List[int]] = {}
        for idx, rule in enumerate(self.rules):
            for attr in rule.lhs_attrs():
                self.rules_by_lhs_attr.setdefault(attr, []).append(idx)

        self.md_indexes: Dict[int, MDBlockingIndex] = {}
        shared = shared_md_indexes or {}
        for idx, rule in enumerate(self.rules):
            if isinstance(rule, MDRule):
                if master is None:
                    raise ValueError(
                        f"rule {rule.name} requires master data, but none was given"
                    )
                self.md_indexes[idx] = shared.get(rule.name) or MDBlockingIndex(
                    rule.md, master, top_l=top_l, use_suffix_tree=use_suffix_tree
                )

        # Partition membership lets the worklist skip arming CFD rules on
        # tuples that cannot match the rule's LHS pattern.  Once every
        # premise attribute of a tuple is asserted those values are final
        # (deterministic fixes never overwrite asserted cells), so a
        # membership test at push time agrees with pop time.  cRepair is
        # worklist-driven and never drains dirty queues, so the index runs
        # in membership_only mode (no MD partitions, no dirty buildup).
        self.vindex: Optional[ViolationIndex] = (
            ViolationIndex(
                relation, self.rules, membership_only=True, registry=registry
            )
            if use_violation_index
            else None
        )

        self.h_tables: Dict[int, Dict[Tuple[Any, ...], _VarEntry]] = {
            idx: {}
            for idx, rule in enumerate(self.rules)
            if isinstance(rule, VariableCFDRule)
        }

        tids = relation.tids()
        self.count: Dict[Tuple[int, int], int] = {}
        self.pending: Dict[int, Set[int]] = {tid: set() for tid in tids}  # P[t]
        self.queue: Deque[Tuple[int, int]] = deque()  # global worklist (t, rule)
        self.queued: Set[Tuple[int, int]] = set()

    def close(self) -> None:
        """Detach the violation index from the relation (idempotent)."""
        if self.vindex is not None:
            self.vindex.detach()

    # ------------------------------------------------------------------
    # Worklist helpers
    # ------------------------------------------------------------------
    def _push(self, tid: int, rule_idx: int) -> None:
        key = (tid, rule_idx)
        if key not in self.queued:
            self.queued.add(key)
            self.queue.append(key)
            if self.trace is not None:
                if self._looping:
                    self._children += 1
                else:
                    assert self._root_rank is not None
                    self.trace.root_ranks.append(self._root_rank)
                    # Several pushes may share one init step: disambiguate
                    # by a trailing counter (ranks must be strict).
                    self._root_rank = self._root_rank[:-1] + (
                        self._root_rank[-1] + 1,
                    )

    def _asserted(self, t: CTuple, attr: str) -> bool:
        return t.has_conf_at_least(attr, self.eta)

    # ------------------------------------------------------------------
    # Procedure update(t, A) — Fig. 5
    # ------------------------------------------------------------------
    def update(self, t: CTuple, attr: str) -> None:
        tid = t.tid
        assert tid is not None
        for rule_idx in self.rules_by_lhs_attr.get(attr, ()):
            rule = self.rules[rule_idx]
            key = (tid, rule_idx)
            self.count[key] = self.count.get(key, 0) + 1
            if self.count[key] == len(rule.lhs_attrs()):
                if self.vindex is None or self.vindex.is_member(rule_idx, tid):
                    self._push(tid, rule_idx)
        # Variable CFDs t was waiting on whose RHS just became asserted:
        # t can now provide the group value.
        for rule_idx in list(self.pending[tid]):
            rule = self.rules[rule_idx]
            if rule.rhs_attr() != attr:
                continue
            self.pending[tid].discard(rule_idx)
            entry = self._var_entry(rule_idx, t)
            if entry is not None and entry.val is None:
                self._push(tid, rule_idx)

    # ------------------------------------------------------------------
    # Procedures vCFDInfer / cCFDInfer / MDInfer — Fig. 5
    # ------------------------------------------------------------------
    def _var_entry(self, rule_idx: int, t: CTuple) -> Optional[_VarEntry]:
        rule = self.rules[rule_idx]
        assert isinstance(rule, VariableCFDRule)
        if not rule.cfd.lhs_matches(t):
            return None
        key = t.project(rule.cfd.lhs)
        table = self.h_tables[rule_idx]
        entry = table.get(key)
        if entry is None:
            entry = table[key] = _VarEntry()
        return entry

    def _apply_fix(
        self,
        t: CTuple,
        attr: str,
        value: Any,
        rule_name: str,
        source,
        equal: Optional[bool] = None,
    ) -> None:
        """Write a deterministic fix (or confirm an equal value) and
        propagate via ``update``.  *equal* short-circuits the
        ``t[attr] == value`` test when the caller already resolved it at
        the ref level (canon equality is value equality)."""
        if equal is None:
            equal = t[attr] == value
        if not equal:
            self.fix_log.record(
                Fix(
                    kind=FixKind.DETERMINISTIC,
                    rule_name=rule_name,
                    tid=t.tid if t.tid is not None else -1,
                    attr=attr,
                    old_value=t[attr],
                    new_value=value,
                    old_conf=t.conf(attr),
                    new_conf=self.eta,
                    source=source,
                )
            )
            # Notify observers (the violation index keeps partition
            # membership coherent with the repaired values).
            self.relation.set_value(t, attr, value)
            self.result_fixes += 1
        else:
            self.confirmed += 1
        t.set_conf(attr, self.eta)
        self.update(t, attr)

    def vcfd_infer(self, t: CTuple, rule_idx: int) -> None:
        rule = self.rules[rule_idx]
        assert isinstance(rule, VariableCFDRule)
        entry = self._var_entry(rule_idx, t)
        if entry is None:  # pattern does not match t
            return
        rhs = rule.rhs_attr()
        if self._asserted(t, rhs):
            if entry.val is None:
                # t provides the unique asserted value for Δ(ȳ); fix all
                # waiting tuples with it.
                entry.val = t[rhs]
                waiting, entry.waiting = entry.waiting, []
                entry.waiting_tids.clear()
                for other in waiting:
                    if other.tid == t.tid or self._asserted(other, rhs):
                        continue
                    self.pending[other.tid].discard(rule_idx)  # type: ignore[index]
                    self._apply_fix(other, rhs, entry.val, rule.name, t.tid or -1)
                # Scoped (delta-driven) run: the waiting list only holds
                # armed in-scope tuples, but the provision would also fix
                # any premise-asserted group-mate outside the scope whose
                # target disagrees — a full run arms those too.  Flag
                # them so the session replays with a larger scope.
                if self.scope_set is not None:
                    self._check_provision_escapes(rule, rule_idx, t, entry.val)
            # A second asserted value conflicting with val would contradict
            # correct confidences (Section 5.1); it is left untouched here.
            return
        # t's RHS is not asserted.
        if entry.val is not None:
            self._apply_fix(t, rhs, entry.val, rule.name, "group")
        else:
            if t.tid not in entry.waiting_tids:
                entry.waiting.append(t)
                entry.waiting_tids.add(t.tid)  # type: ignore[arg-type]
                self.pending[t.tid].add(rule_idx)  # type: ignore[index]

    def _check_provision_escapes(
        self, rule: VariableCFDRule, rule_idx: int, provider: CTuple, val: Any
    ) -> None:
        """Collect out-of-scope cells a full run would deterministically fix
        with the group value *val* just provided by *provider*."""
        if self.vindex is None or self.scope_set is None:
            return
        store = self.vindex._cfd_parts.get(rule_idx)
        if store is None:
            return
        key = store.key_of.get(provider.tid)
        if key is None:
            return
        rhs = rule.rhs_attr()
        lhs = rule.lhs_attrs()
        for mate_tid in store.groups[key].tids:
            if mate_tid in self.scope_set:
                continue
            mate = self.relation.by_tid(mate_tid)
            if mate[rhs] == val or self._asserted(mate, rhs):
                continue
            if all(self._asserted(mate, attr) for attr in lhs):
                self.escaped.add((mate_tid, rhs))

    def ccfd_infer(self, t: CTuple, rule_idx: int) -> None:
        rule = self.rules[rule_idx]
        assert isinstance(rule, ConstantCFDRule)
        if not rule.cfd.lhs_matches(t):
            return
        rhs = rule.rhs_attr()
        if self._asserted(t, rhs):
            return  # asserted targets are never overwritten
        constant = rule.cfd.rhs_constant
        equal: Optional[bool] = None
        if isinstance(t, ColumnTuple) and _columns.repair_engine() == "vectorized":
            # Target resolution at the ref level: the current cell equals
            # the rule constant iff its canon ref is the constant's canon
            # (invariant 19) — no cell materialization.  ``find_canon``
            # probes without interning; an absent canon means no table
            # value compares equal to the constant.
            store = t._store
            table = store.table
            try:
                want = table.find_canon(constant)
            except TypeError:  # unhashable constant: use the == fallback
                pass
            else:
                ref = store.values[store.index_of[rhs]].data[t._row]
                equal = want is not None and table.canon[ref] == want
        self._apply_fix(t, rhs, constant, rule.name, "pattern", equal=equal)

    def md_infer(self, t: CTuple, rule_idx: int) -> None:
        rule = self.rules[rule_idx]
        assert isinstance(rule, MDRule)
        rhs, master_attr = rule.md.rhs_pair
        if self._asserted(t, rhs):
            return
        index = self.md_indexes[rule_idx]
        match = (
            index.cached_find_match(t) if self.vindex is not None else index.find_match(t)
        )
        if match is None:
            return
        self._apply_fix(t, rhs, match[master_attr], rule.name, "master")

    def _init_asserted_vectorized(
        self, scope: Sequence[int], relevant_attrs: Tuple[str, ...]
    ) -> None:
        """Initialization lines 2–6 over the confidence ref columns.

        The asserted test (``cf is not None and cf ≥ η``) is resolved
        once per *distinct* confidence ref per attribute — a typical
        relation holds a handful of distinct confidences — and the
        identical ``(tid, attr)`` propagation loop then runs off the
        precomputed masks, materializing a row-view only for tuples with
        at least one asserted relevant attribute.  Sound because nothing
        mutates confidences before the fixpoint loop: during init,
        ``update`` only arms worklist entries (``pending`` is empty and
        fixes happen later), so upfront masks agree with the reference
        path's lazy per-tuple reads, in the same propagation order.
        """
        relation = self.relation
        store = relation.column_store
        values = store.table.values
        eta = self.eta
        tuples = relation._tuples
        rows = [tuples[tid]._row for tid in scope]
        index_of = store.index_of
        by_tid = relation.by_tid
        asserted: Dict[int, bool] = {}
        masks: List[List[bool]] = []
        for attr in relevant_attrs:
            data = store.confs[index_of[attr]].data
            mask = []
            for row in rows:
                ref = data[row]
                flag = asserted.get(ref)
                if flag is None:
                    conf = values[ref]
                    flag = asserted[ref] = conf is not None and conf >= eta
                mask.append(flag)
            masks.append(mask)
        for pos, tid in enumerate(scope):
            t: Optional[CTuple] = None
            self._root_rank = (1, tid, 0, 0)
            for attr, mask in zip(relevant_attrs, masks):
                if mask[pos]:
                    if t is None:
                        t = by_tid(tid)
                    self.update(t, attr)

    # ------------------------------------------------------------------
    # Main loop — Fig. 4
    # ------------------------------------------------------------------
    def run(self) -> None:
        # Rule-declaration order, not set order: the iteration order feeds
        # the worklist, and set-of-str order varies with the per-process
        # hash seed — shard workers must schedule exactly like the parent.
        relevant: Dict[str, None] = {}
        for rule in self.rules:
            for attr in rule.lhs_attrs():
                relevant.setdefault(attr, None)
            relevant.setdefault(rule.rhs_attr(), None)
        relevant_attrs: Tuple[str, ...] = tuple(relevant)
        # Initialization (lines 1–6): propagate already-asserted attributes
        # and arm premise-free rules.  A scoped (delta-driven) run arms
        # only the dirty tuples — sound because the session's influence
        # closure guarantees every tuple a scoped tuple can interact with
        # (same variable-CFD group at any point) is itself in scope.
        scope = (
            self.scope_tids if self.scope_tids is not None else self.relation.tids()
        )
        for idx, rule in enumerate(self.rules):
            if not rule.lhs_attrs():
                for tid in scope:
                    self._root_rank = (0, idx, tid, 0)
                    self._push(tid, idx)
        if _columns.repair_vectorized_for(self.relation):
            self._init_asserted_vectorized(scope, relevant_attrs)
        else:
            for tid in scope:
                t = self.relation.by_tid(tid)
                self._root_rank = (1, tid, 0, 0)
                for attr in relevant_attrs:
                    if self._asserted(t, attr):
                        self.update(t, attr)
        # Fixpoint loop (lines 7–15).
        self._looping = True
        trace = self.trace
        while self.queue:
            tid, rule_idx = self.queue.popleft()
            self.queued.discard((tid, rule_idx))
            t = self.relation.by_tid(tid)
            rule = self.rules[rule_idx]
            self.fired += 1
            if trace is not None:
                self._children = 0
                fixes_before = len(self.fix_log)
            if isinstance(rule, VariableCFDRule):
                self.vcfd_infer(t, rule_idx)
            elif isinstance(rule, ConstantCFDRule):
                self.ccfd_infer(t, rule_idx)
            else:
                self.md_infer(t, rule_idx)
            if trace is not None:
                trace.pops.append(
                    (self._children, len(self.fix_log) - fixes_before)
                )


def crepair(
    relation: Relation,
    cfds: Sequence[CFD] = (),
    mds: Sequence[MD] = (),
    master: Optional[Relation] = None,
    eta: float = 0.8,
    fix_log: Optional[FixLog] = None,
    top_l: int = 20,
    use_suffix_tree: bool = True,
    in_place: bool = False,
    use_violation_index: bool = True,
    md_indexes: Optional[Mapping[str, MDBlockingIndex]] = None,
    registry: Optional[GroupStoreRegistry] = None,
    scope_tids: Optional[Sequence[int]] = None,
    trace: Optional[WorklistTrace] = None,
) -> CRepairResult:
    """Find all deterministic fixes in *relation* (Theorem 5.1).

    Parameters
    ----------
    relation:
        The dirty relation ``D``.  Cloned unless ``in_place=True``.
    cfds, mds:
        The rule sets Σ and Γ (normalized internally; negative MDs must
        already be embedded via
        :func:`repro.constraints.embed_negative`).
    master:
        Master data ``Dm`` (required when ``mds`` is non-empty).
    eta:
        Confidence threshold η; attributes with ``cf ≥ η`` are asserted.
    fix_log:
        Optional shared log (the UniClean pipeline threads one through all
        three phases).
    top_l, use_suffix_tree:
        Blocking parameters for MD similarity search (Section 5.2).
    in_place:
        Mutate *relation* instead of a clone.
    use_violation_index:
        Use LHS-partition membership to keep the worklist free of tuples
        that cannot match a rule's pattern; ``False`` is the legacy
        baseline (identical fix logs either way).
    md_indexes:
        Optional pre-built blocking indexes (rule name →
        :class:`MDBlockingIndex`) shared across pipeline phases.
    registry:
        Optional session-owned
        :class:`~repro.indexing.group_store.GroupStoreRegistry`; its
        prebuilt shared group stores back the violation index instead of
        a fresh relation scan.
    scope_tids:
        When given (a sorted tid sequence), restrict the run to these
        tuples — the delta-driven mode of
        :class:`~repro.pipeline.session.CleaningSession`.  Requires the
        caller to pass an influence-closed scope; arbitrary subsets do
        not reproduce full-run fixes.
    trace:
        Optional :class:`~repro.core.trace.WorklistTrace` recording the
        worklist schedule, so partition-parallel runs can merge shard
        fix logs into the exact unsharded order.

    Returns
    -------
    CRepairResult
        The partial repair with deterministic fixes marked in the log.
    """
    working = relation if in_place else relation.clone()
    log = fix_log if fix_log is not None else FixLog()
    rules = derive_rules(cfds, mds)
    state = _CRepair(
        working,
        rules,
        master,
        eta,
        log,
        top_l=top_l,
        use_suffix_tree=use_suffix_tree,
        use_violation_index=use_violation_index,
        shared_md_indexes=md_indexes,
        registry=registry,
        scope_tids=scope_tids,
        trace=trace,
    )
    try:
        state.run()
    finally:
        state.close()
    return CRepairResult(
        relation=working,
        fix_log=log,
        deterministic_fixes=state.result_fixes,
        confirmed_cells=state.confirmed,
        rules_fired=state.fired,
        escaped_cells=state.escaped,
    )
