"""The UniClean core: fix classes, cost model and the three algorithms.

* :func:`crepair` — deterministic fixes from confidence (Section 5);
* :func:`erepair` — reliable fixes from entropy (Section 6);
* :func:`hrepair` — possible fixes from heuristics (Section 7);
* :class:`UniClean` — the tri-level pipeline (Section 3.2).
"""

from repro.core.cost import DEFAULT_CONFIDENCE, cell_cost, repair_cost, value_distance
from repro.core.crepair import CRepairResult, crepair
from repro.core.erepair import ERepairResult, erepair
from repro.core.fixes import Fix, FixKind, FixLog, format_fix_report, rule_statistics
from repro.core.hrepair import (
    HRepairResult,
    cfd_satisfied_with_nulls,
    hrepair,
    is_clean,
    md_satisfied_with_nulls,
)
from repro.core.uniclean import CleaningResult, UniClean, UniCleanConfig

__all__ = [
    "CRepairResult",
    "CleaningResult",
    "DEFAULT_CONFIDENCE",
    "ERepairResult",
    "Fix",
    "FixKind",
    "FixLog",
    "format_fix_report",
    "rule_statistics",
    "HRepairResult",
    "UniClean",
    "UniCleanConfig",
    "cell_cost",
    "cfd_satisfied_with_nulls",
    "crepair",
    "erepair",
    "hrepair",
    "is_clean",
    "md_satisfied_with_nulls",
    "repair_cost",
    "value_distance",
]
