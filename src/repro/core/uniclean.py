"""The UniClean pipeline (Section 3.2, Fig. 2).

UniClean takes a dirty relation ``D``, master data ``Dm``, cleaning rules
derived from ``Θ = Σ ∪ Γ`` and thresholds η (confidence) and δ1/δ2
(update/entropy), and produces a repair ``Dr`` with a small
``cost(Dr, D)`` such that ``Dr ⊨ Σ`` and ``(Dr, Dm) ⊨ Γ``, by running
three algorithms consecutively:

1. :func:`~repro.core.crepair.crepair` — deterministic fixes (confidence);
2. :func:`~repro.core.erepair.erepair` — reliable fixes (entropy);
3. :func:`~repro.core.hrepair.hrepair` — possible fixes (heuristic),
   preserving the deterministic fixes.

"There is no need to iterate the processes for the three types of fixes"
(Section 3.2, Remark) — each phase runs once, feeding the next.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Sequence

from repro.analysis.consistency import assert_consistent
from repro.constraints.cfd import CFD
from repro.constraints.md import MD, NegativeMD, embed_negative
from repro.core.crepair import CRepairResult
from repro.core.erepair import ERepairResult
from repro.core.fixes import FixKind, FixLog
from repro.core.hrepair import HRepairResult
from repro.relational.relation import Relation


@dataclass
class UniCleanConfig:
    """Tunable parameters of the pipeline.

    Attributes
    ----------
    eta:
        Confidence threshold η for deterministic fixes (paper experiments
        use 1.0: only cells explicitly asserted by the user count).
    delta1:
        Update threshold δ1: max rewrites per cell in eRepair.
    delta2:
        Entropy threshold δ2 (paper experiments use 0.8).
    top_l:
        Top-``l`` LCS blocking fan-out for MD search (paper: l ≤ 20).
    use_suffix_tree:
        Disable to fall back to full master scans (ablation baseline).
    match_engine:
        MD match engine for blocking indexes: ``"join"`` (filtered
        inverted-index similarity join, exact) or ``"reference"``
        (top-``l`` suffix-tree retrieval).  ``None`` defers to the
        process-wide ``REPRO_MATCH_ENGINE`` flag.  Configs pickled
        before this field existed (persisted snapshots) keep loading:
        :meth:`__setstate__` fills absent fields with their defaults.
    use_violation_index:
        Drive all three phases from the incremental
        :class:`~repro.indexing.violation_index.ViolationIndex` (dirty
        partitions instead of full-relation rescans).  ``False`` selects
        the legacy-scan baseline; fix logs are byte-identical either way.
    check_consistency:
        Run the (NP-complete) consistency analysis of Σ ∪ Γ before
        cleaning; enable for small hand-written rule sets.
    run_crepair / run_erepair / run_hrepair:
        Phase switches; disabling phases yields the partial pipelines
        compared in Exp-3 (``cRepair`` alone, ``cRepair+eRepair``, full).
    """

    eta: float = 0.8
    delta1: int = 3
    delta2: float = 0.8
    top_l: int = 20
    use_suffix_tree: bool = True
    match_engine: Optional[str] = None
    use_violation_index: bool = True
    check_consistency: bool = False
    run_crepair: bool = True
    run_erepair: bool = True
    run_hrepair: bool = True

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Upgrade configs pickled before a field existed.

        Snapshots and checkpoints persist the config by pickling; every
        new engine flag added since (``match_engine`` today, any future
        field tomorrow) would otherwise be missing from old payloads and
        every reader would need a per-field ``getattr`` shim.  Centralize
        the forward-compat here instead: absent fields take their
        dataclass defaults, unknown (newer-writer) fields are kept as-is.
        """
        for f in fields(self):
            if f.name not in state:
                state[f.name] = f.default
        self.__dict__.update(state)


@dataclass
class CleaningResult:
    """The outcome of a full pipeline run."""

    repaired: Relation
    fix_log: FixLog
    crepair_result: Optional[CRepairResult]
    erepair_result: Optional[ERepairResult]
    hrepair_result: Optional[HRepairResult]
    cost: float
    clean: bool
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Total wall-clock seconds across phases."""
        return sum(self.timings.values())

    def fix_counts(self) -> Dict[FixKind, int]:
        """Cells per latest fix mark."""
        return self.fix_log.cell_counts()

    def summary(self) -> str:
        """Human-readable run summary."""
        counts = self.fix_counts()
        return (
            f"UniClean: {self.fix_log.summary()}; cost={self.cost:.3f}; "
            f"clean={self.clean}; time={self.total_time:.3f}s "
            f"(c={self.timings.get('crepair', 0.0):.3f}, "
            f"e={self.timings.get('erepair', 0.0):.3f}, "
            f"h={self.timings.get('hrepair', 0.0):.3f})"
        )


class UniClean:
    """The tri-level data cleaning system of the paper.

    Parameters
    ----------
    cfds:
        The CFD set Σ.
    mds:
        The positive-MD set Γ⁺.
    negative_mds:
        The negative-MD set Γ⁻, compiled into the positives via
        Proposition 2.6 at construction time.
    master:
        Master data ``Dm`` (required when MDs are present).
    config:
        Pipeline parameters; defaults follow the paper's experiments.

    Examples
    --------
    >>> cleaner = UniClean(cfds=sigma, mds=gamma, master=dm)  # doctest: +SKIP
    >>> result = cleaner.clean(dirty)                         # doctest: +SKIP
    >>> result.clean                                          # doctest: +SKIP
    True
    """

    def __init__(
        self,
        cfds: Sequence[CFD] = (),
        mds: Sequence[MD] = (),
        negative_mds: Sequence[NegativeMD] = (),
        master: Optional[Relation] = None,
        config: Optional[UniCleanConfig] = None,
    ):
        self.config = config or UniCleanConfig()
        self.cfds: list = []
        for cfd in cfds:
            self.cfds.extend(cfd.normalize())
        if negative_mds:
            self.mds = embed_negative(list(mds), list(negative_mds))
        else:
            self.mds = []
            for md in mds:
                self.mds.extend(md.normalize())
        if self.mds and master is None:
            raise ValueError("MDs require master data")
        self.master = master
        if self.config.check_consistency and self.cfds:
            schema = self.cfds[0].schema
            assert_consistent(schema, self.cfds, self.mds, master)
        # Master data is immutable, so the (expensive) master-side blocking
        # indexes — match cache included — persist across clean() calls for
        # repeated cleaning of evolving data against the same master.
        self._md_indexes: Dict[str, object] = {}

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def clean(self, relation: Relation) -> CleaningResult:
        """Run the configured phases on *relation* and return the repair.

        The input relation is never modified.  Each call runs a throwaway
        :class:`~repro.pipeline.session.CleaningSession` — the one-shot
        batch pipeline is the degenerate case of the persistent engine —
        sharing this instance's master-side blocking indexes.  Callers
        that clean *evolving* data should hold a session directly and use
        its delta-driven ``apply``.
        """
        from repro.pipeline.session import CleaningSession

        session = CleaningSession.from_normalized(
            cfds=self.cfds,
            mds=self.mds,
            master=self.master,
            config=self.config,
            md_indexes=self._md_indexes,
        )
        try:
            return session.clean(relation)
        finally:
            session.close()
