"""The UniClean pipeline (Section 3.2, Fig. 2).

UniClean takes a dirty relation ``D``, master data ``Dm``, cleaning rules
derived from ``Θ = Σ ∪ Γ`` and thresholds η (confidence) and δ1/δ2
(update/entropy), and produces a repair ``Dr`` with a small
``cost(Dr, D)`` such that ``Dr ⊨ Σ`` and ``(Dr, Dm) ⊨ Γ``, by running
three algorithms consecutively:

1. :func:`~repro.core.crepair.crepair` — deterministic fixes (confidence);
2. :func:`~repro.core.erepair.erepair` — reliable fixes (entropy);
3. :func:`~repro.core.hrepair.hrepair` — possible fixes (heuristic),
   preserving the deterministic fixes.

"There is no need to iterate the processes for the three types of fixes"
(Section 3.2, Remark) — each phase runs once, feeding the next.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Set, Tuple

from repro.analysis.consistency import assert_consistent, relation_is_clean
from repro.constraints.cfd import CFD
from repro.constraints.md import MD, NegativeMD, embed_negative
from repro.core.cost import repair_cost
from repro.core.crepair import CRepairResult, crepair
from repro.core.erepair import ERepairResult, erepair
from repro.core.fixes import FixKind, FixLog
from repro.core.hrepair import HRepairResult, hrepair
from repro.indexing.blocking import build_md_indexes
from repro.relational.relation import Relation


@dataclass
class UniCleanConfig:
    """Tunable parameters of the pipeline.

    Attributes
    ----------
    eta:
        Confidence threshold η for deterministic fixes (paper experiments
        use 1.0: only cells explicitly asserted by the user count).
    delta1:
        Update threshold δ1: max rewrites per cell in eRepair.
    delta2:
        Entropy threshold δ2 (paper experiments use 0.8).
    top_l:
        Top-``l`` LCS blocking fan-out for MD search (paper: l ≤ 20).
    use_suffix_tree:
        Disable to fall back to full master scans (ablation baseline).
    use_violation_index:
        Drive all three phases from the incremental
        :class:`~repro.indexing.violation_index.ViolationIndex` (dirty
        partitions instead of full-relation rescans).  ``False`` selects
        the legacy-scan baseline; fix logs are byte-identical either way.
    check_consistency:
        Run the (NP-complete) consistency analysis of Σ ∪ Γ before
        cleaning; enable for small hand-written rule sets.
    run_crepair / run_erepair / run_hrepair:
        Phase switches; disabling phases yields the partial pipelines
        compared in Exp-3 (``cRepair`` alone, ``cRepair+eRepair``, full).
    """

    eta: float = 0.8
    delta1: int = 3
    delta2: float = 0.8
    top_l: int = 20
    use_suffix_tree: bool = True
    use_violation_index: bool = True
    check_consistency: bool = False
    run_crepair: bool = True
    run_erepair: bool = True
    run_hrepair: bool = True


@dataclass
class CleaningResult:
    """The outcome of a full pipeline run."""

    repaired: Relation
    fix_log: FixLog
    crepair_result: Optional[CRepairResult]
    erepair_result: Optional[ERepairResult]
    hrepair_result: Optional[HRepairResult]
    cost: float
    clean: bool
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        """Total wall-clock seconds across phases."""
        return sum(self.timings.values())

    def fix_counts(self) -> Dict[FixKind, int]:
        """Cells per latest fix mark."""
        return self.fix_log.cell_counts()

    def summary(self) -> str:
        """Human-readable run summary."""
        counts = self.fix_counts()
        return (
            f"UniClean: {self.fix_log.summary()}; cost={self.cost:.3f}; "
            f"clean={self.clean}; time={self.total_time:.3f}s "
            f"(c={self.timings.get('crepair', 0.0):.3f}, "
            f"e={self.timings.get('erepair', 0.0):.3f}, "
            f"h={self.timings.get('hrepair', 0.0):.3f})"
        )


class UniClean:
    """The tri-level data cleaning system of the paper.

    Parameters
    ----------
    cfds:
        The CFD set Σ.
    mds:
        The positive-MD set Γ⁺.
    negative_mds:
        The negative-MD set Γ⁻, compiled into the positives via
        Proposition 2.6 at construction time.
    master:
        Master data ``Dm`` (required when MDs are present).
    config:
        Pipeline parameters; defaults follow the paper's experiments.

    Examples
    --------
    >>> cleaner = UniClean(cfds=sigma, mds=gamma, master=dm)  # doctest: +SKIP
    >>> result = cleaner.clean(dirty)                         # doctest: +SKIP
    >>> result.clean                                          # doctest: +SKIP
    True
    """

    def __init__(
        self,
        cfds: Sequence[CFD] = (),
        mds: Sequence[MD] = (),
        negative_mds: Sequence[NegativeMD] = (),
        master: Optional[Relation] = None,
        config: Optional[UniCleanConfig] = None,
    ):
        self.config = config or UniCleanConfig()
        self.cfds: list = []
        for cfd in cfds:
            self.cfds.extend(cfd.normalize())
        if negative_mds:
            self.mds = embed_negative(list(mds), list(negative_mds))
        else:
            self.mds = []
            for md in mds:
                self.mds.extend(md.normalize())
        if self.mds and master is None:
            raise ValueError("MDs require master data")
        self.master = master
        if self.config.check_consistency and self.cfds:
            schema = self.cfds[0].schema
            assert_consistent(schema, self.cfds, self.mds, master)

    # ------------------------------------------------------------------
    # Pipeline
    # ------------------------------------------------------------------
    def clean(self, relation: Relation) -> CleaningResult:
        """Run the configured phases on *relation* and return the repair.

        The input relation is never modified.
        """
        config = self.config
        working = relation.clone()
        log = FixLog()
        timings: Dict[str, float] = {}
        c_result: Optional[CRepairResult] = None
        e_result: Optional[ERepairResult] = None
        h_result: Optional[HRepairResult] = None

        # Master data is immutable during cleaning, so the (expensive)
        # master-side blocking indexes are built once and shared by every
        # phase and the final satisfaction check.
        md_indexes = (
            build_md_indexes(
                self.mds,
                self.master,
                top_l=config.top_l,
                use_suffix_tree=config.use_suffix_tree,
            )
            if self.mds and self.master is not None
            else {}
        )

        if config.run_crepair:
            started = time.perf_counter()
            c_result = crepair(
                working,
                self.cfds,
                self.mds,
                master=self.master,
                eta=config.eta,
                fix_log=log,
                top_l=config.top_l,
                use_suffix_tree=config.use_suffix_tree,
                in_place=True,
                use_violation_index=config.use_violation_index,
                md_indexes=md_indexes,
            )
            timings["crepair"] = time.perf_counter() - started

        protected: Set[Tuple[int, str]] = log.deterministic_cells()

        if config.run_erepair:
            started = time.perf_counter()
            e_result = erepair(
                working,
                self.cfds,
                self.mds,
                master=self.master,
                delta1=config.delta1,
                delta2=config.delta2,
                protected=protected,
                fix_log=log,
                top_l=config.top_l,
                use_suffix_tree=config.use_suffix_tree,
                in_place=True,
                use_violation_index=config.use_violation_index,
                md_indexes=md_indexes,
            )
            timings["erepair"] = time.perf_counter() - started

        if config.run_hrepair:
            started = time.perf_counter()
            h_result = hrepair(
                working,
                self.cfds,
                self.mds,
                master=self.master,
                protected=protected,
                fix_log=log,
                top_l=config.top_l,
                use_suffix_tree=config.use_suffix_tree,
                in_place=True,
                use_violation_index=config.use_violation_index,
                md_indexes=md_indexes,
            )
            timings["hrepair"] = time.perf_counter() - started

        return CleaningResult(
            repaired=working,
            fix_log=log,
            crepair_result=c_result,
            erepair_result=e_result,
            hrepair_result=h_result,
            cost=repair_cost(working, relation),
            clean=relation_is_clean(
                working, self.cfds, self.mds, self.master, md_indexes=md_indexes
            ),
            timings=timings,
        )
