"""Rule dependency graph and the eRepair rule ordering (Section 6.2).

"Each rule of Σ ∪ Γ is a node ... there exists an edge (u, v) from node u
to node v if RHS(ξu) ∩ LHS(ξv) ≠ ∅" — applying u may enable v, so u should
run first.  The ordering:

1. find strongly connected components (linear time, Tarjan);
2. topologically order the condensation DAG;
3. inside each SCC, order by decreasing out-degree/in-degree ratio
   ("the higher the ratio is, the more effects it has on other nodes"),
   with the rule name as a deterministic tiebreak.

Example 6.1 of the paper: for the running-example rules the ratios are
φ1: 2/1, φ2: 2/1, φ3: 1/1, φ4: 3/3, ψ: 2/4, giving the order
φ1 > φ2 > φ3 > φ4 > ψ.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.constraints.rules import AnyRule


def build_dependency_graph(rules: Sequence[AnyRule]) -> Dict[int, Set[int]]:
    """Adjacency (by rule index): edge ``u → v`` iff RHS(u) ∩ LHS(v) ≠ ∅.

    Attributes are data-side: an MD's premise/RHS attributes on ``R``
    interact with CFD attributes on ``R`` directly.
    """
    lhs_sets = [set(rule.lhs_attrs()) for rule in rules]
    rhs = [rule.rhs_attr() for rule in rules]
    graph: Dict[int, Set[int]] = {i: set() for i in range(len(rules))}
    for u in range(len(rules)):
        for v in range(len(rules)):
            if u == v:
                continue
            if rhs[u] in lhs_sets[v]:
                graph[u].add(v)
    return graph


def strongly_connected_components(graph: Dict[int, Set[int]]) -> List[List[int]]:
    """Tarjan's SCC algorithm (iterative), components in reverse
    topological order of the condensation."""
    index_counter = 0
    stack: List[int] = []
    lowlink: Dict[int, int] = {}
    index: Dict[int, int] = {}
    on_stack: Set[int] = set()
    components: List[List[int]] = []

    for start in graph:
        if start in index:
            continue
        work: List[Tuple[int, Iterable[int]]] = [(start, iter(sorted(graph[start])))]
        index[start] = lowlink[start] = index_counter
        index_counter += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter
                    index_counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[int] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    component.append(w)
                    if w == node:
                        break
                components.append(component)
    return components


def order_rules(rules: Sequence[AnyRule]) -> List[AnyRule]:
    """The eRepair application order ``O`` over *rules* (Section 6.2).

    Rules in upstream SCCs come first; within an SCC, higher
    out/in-degree ratio first.  Deterministic: ties break on rule name,
    then on input position.
    """
    if not rules:
        return []
    graph = build_dependency_graph(rules)
    components = strongly_connected_components(graph)
    # Tarjan emits components in reverse topological order of the
    # condensation; reverse to get sources first.
    components.reverse()
    out_degree = {u: len(graph[u]) for u in graph}
    in_degree = {u: 0 for u in graph}
    for u, succs in graph.items():
        for v in succs:
            in_degree[v] += 1

    def ratio(u: int) -> float:
        if in_degree[u] == 0:
            return float("inf") if out_degree[u] > 0 else 1.0
        return out_degree[u] / in_degree[u]

    ordered: List[AnyRule] = []
    for component in components:
        component_sorted = sorted(
            component, key=lambda u: (-ratio(u), rules[u].name, u)
        )
        ordered.extend(rules[u] for u in component_sorted)
    return ordered


def degree_ratios(rules: Sequence[AnyRule]) -> Dict[str, Tuple[int, int]]:
    """``rule name → (out_degree, in_degree)`` — exposed for tests that
    replicate Example 6.1's ratios."""
    graph = build_dependency_graph(rules)
    out_degree = {u: len(graph[u]) for u in graph}
    in_degree = {u: 0 for u in graph}
    for u, succs in graph.items():
        for v in succs:
            in_degree[v] += 1
    return {rules[u].name: (out_degree[u], in_degree[u]) for u in graph}
