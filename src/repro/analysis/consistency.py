"""Consistency analysis of ``Σ ∪ Γ`` (Theorem 4.1).

The consistency problem — given master data ``Dm`` and ``Θ = Σ ∪ Γ``, is
there a *nonempty* instance ``D`` of ``R`` with ``D ⊨ Σ`` and
``(D, Dm) ⊨ Γ``? — is NP-complete.  The proof establishes a small-model
property: it suffices to look for a **single-tuple** instance ``D = {t}``
whose attribute values are drawn from the active domains

    ``adom(A)`` = constants of ``A`` in Σ  ∪  values of ``Dm`` attributes
    identified with ``A`` by Γ  ∪  at most one extra fresh value of
    ``dom(A)`` (if one exists).

This module implements that NP search exactly, by backtracking over
attribute assignments with incremental pruning on constant CFDs.  It is
exponential in the worst case — as any correct algorithm must be unless
P = NP — but fast on realistic rule sets, whose constants are sparse.

Single-tuple semantics (what the checker enforces on ``{t}``):

* every CFD with ``t[X] ≍ tp[X]`` requires ``t[Y] ≍ tp[Y]`` (only the
  constant pattern entries constrain a single tuple);
* every MD with a premise that holds against some master tuple ``s``
  requires ``t[E] = s[F]``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.constraints.cfd import CFD, Violation
from repro.constraints.md import MD
from repro.constraints.rules import ConstantCFDRule, derive_rules
from repro.indexing.group_store import hot_groups
from repro.relational import columns as _columns
from repro.relational.attribute import NULL, is_null
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuples import CTuple
from repro.exceptions import InconsistentRulesError


# ----------------------------------------------------------------------
# Data-level violation checks, routed through the violation index
# ----------------------------------------------------------------------
def relation_violations(
    relation: Relation,
    cfds: Sequence[CFD],
    violation_index: Optional[Any] = None,
    null_semantics: str = "tolerant",
    only_tids: Optional[Any] = None,
) -> List[Violation]:
    """CFD violations of *relation*, computed from LHS partitions.

    A single pass builds (or reuses) the per-rule partitions of a
    :class:`~repro.indexing.violation_index.ViolationIndex`; each
    constant-CFD member is checked against the pattern constant and each
    variable-CFD partition for conflicting RHS values.  With a
    maintained index this avoids any relation rescan; built fresh it
    still replaces the per-CFD scans of the legacy checks with one scan
    for all rules.  Violations are reported in rule order, then ascending
    tid / first-encounter partition order (deterministic).

    ``null_semantics`` selects how nulls count:

    * ``"tolerant"`` (default) — Section 7 repair semantics: a null
      never witnesses a violation (used by the satisfaction checks);
    * ``"strict"`` — the classic ``D ⊨ φ`` semantics of
      :meth:`repro.constraints.cfd.CFD.violations`: a null RHS fails the
      pattern match (single-tuple violation) and nulls participate in
      pair comparisons.  Output order and content match the brute-force
      scan exactly.

    ``only_tids`` restricts the check to the given tuples and the
    partitions containing them — the delta-verification mode of
    :class:`~repro.pipeline.session.CleaningSession`, sound when every
    tuple outside the set is known to satisfy the rules already.
    """
    from repro.indexing.violation_index import ViolationIndex

    if null_semantics not in ("tolerant", "strict"):
        raise ValueError(f"unknown null_semantics {null_semantics!r}")
    strict = null_semantics == "strict"
    rules = [r for cfd in cfds for r in derive_rules([cfd])]
    index = violation_index
    if index is None:
        index = ViolationIndex(relation, rules, attach=False)
        positions = list(range(len(rules)))
    else:
        # Partition state is keyed by rule position, so map each expected
        # rule onto the supplied index's position by rule kind and the
        # underlying CFD itself (CFD equality is pattern-aware — names
        # are not unique: two distinct pattern rows of one tableau share
        # the default name).  A superset index (e.g. a session's check
        # index over the full rule set) is fine; a missing rule is an
        # error.  Equal CFDs map to one position, which is correct: they
        # share the same partitions.
        by_key = {}
        for i, r in enumerate(index.rules):
            indexed_cfd = getattr(r, "cfd", None)
            if indexed_cfd is not None:
                by_key[(type(r).__name__, indexed_cfd)] = i
        positions = []
        for rule in rules:
            key = (type(rule).__name__, rule.cfd)
            if key not in by_key:
                raise ValueError(
                    f"violation_index does not cover rule {rule.name!r}; "
                    "it was built over a different rule list"
                )
            positions.append(by_key[key])
    only = set(only_tids) if only_tids is not None else None
    if _columns.vectorized_for(relation):
        return _violations_vectorized(relation, rules, positions, index, strict, only)
    out: List[Violation] = []
    for rule, idx in zip(rules, positions):
        rhs = rule.rhs_attr()
        is_constant = isinstance(rule, ConstantCFDRule)

        def rule_member_tids(idx=idx):
            if only is None:
                return index.member_tids(idx)
            return sorted(tid for tid in only if index.is_member(idx, tid))

        def rule_groups(idx=idx):
            if only is None:
                yield from index.iter_groups(idx)
            else:
                yield from index.groups_of_tids(idx, only)

        if strict:
            # Single-tuple check ``t[Y] ≍ tp[Y]``: fails on a mismatched
            # constant and on null (nulls never match, wildcard included).
            constant = rule.cfd.rhs_constant if is_constant else None
            for tid in rule_member_tids():
                value = relation.by_tid(tid)[rhs]
                if is_null(value) or (is_constant and value != constant):
                    out.append(Violation(rule.cfd, (tid,), rhs))
            # Pair check among tuples agreeing on X — constant CFDs
            # included, exactly as the brute-force scan does.
            for _key, tids in rule_groups():
                seen: Dict[Any, int] = {}
                for tid in tids:
                    value = relation.by_tid(tid)[rhs]
                    for other_value, witness in seen.items():
                        if other_value != value:
                            out.append(Violation(rule.cfd, (witness, tid), rhs))
                    seen.setdefault(value, tid)
        elif is_constant:
            constant = rule.cfd.rhs_constant
            for tid in rule_member_tids():
                value = relation.by_tid(tid)[rhs]
                if not is_null(value) and value != constant:
                    out.append(Violation(rule.cfd, (tid,), rhs))
        else:
            for _key, tids in rule_groups():
                seen: Dict[Any, int] = {}
                for tid in tids:
                    value = relation.by_tid(tid)[rhs]
                    if is_null(value):
                        continue
                    for other_value, witness in seen.items():
                        if other_value != value:
                            out.append(Violation(rule.cfd, (witness, tid), rhs))
                    seen.setdefault(value, tid)
    return out


def _violations_vectorized(
    relation: Relation,
    rules: Sequence[Any],
    positions: Sequence[int],
    index: Any,
    strict: bool,
    only: Optional[Set[int]],
) -> List[Violation]:
    """The vectorized check engine behind :func:`relation_violations`.

    Same partition semantics as the reference loop, but every RHS read
    is a ref-column index (``rhs_data[row]``) and every value test a
    canonical reference comparison — no ``by_tid`` →
    ``dict.__getitem__`` chain, no per-tuple object touched beyond its
    stored row index.  The pair check also prunes on the maintained RHS
    value counts: partitions whose counts hold a single ``==``-class
    cannot pair-violate and are skipped before any member is read, so
    the per-group sorting work scales with the *dirty* partitions, not
    with all of them.  The ``seen`` lists key canonical refs, whose
    equality (and therefore first-encounter order) is exactly the value
    equality the reference engine's value-keyed maps use, so the
    emitted violation list is identical element for element.  Gated by
    :func:`repro.relational.columns.check_engine`.

    The ``only_tids`` delta mode keeps the index-query path (its scopes
    are small; the full-scan restructuring would not pay for itself).
    """
    store = relation.column_store
    table = store.table
    canon = table.canon
    null_c = table.null_canon
    row_of = store.row_of
    out: List[Violation] = []
    for rule, idx in zip(rules, positions):
        rhs = rule.rhs_attr()
        is_constant = isinstance(rule, ConstantCFDRule)
        rhs_data = store.values[store.index_of[rhs]].data
        part = index.partition(idx)

        def rule_member_tids(idx=idx, part=part):
            if only is not None:
                return sorted(t for t in only if index.is_member(idx, t))
            if part is not None:
                return sorted(part.key_of)
            return index.member_tids(idx)  # pragma: no cover - MD rules

        if strict:
            const_c = (
                table.canon_ref(rule.cfd.rhs_constant) if is_constant else -1
            )
            for tid in rule_member_tids():
                c = canon[rhs_data[row_of[tid]]]
                if c == null_c or (is_constant and c != const_c):
                    out.append(Violation(rule.cfd, (tid,), rhs))
        elif is_constant:
            const_c = table.canon_ref(rule.cfd.rhs_constant)
            for tid in rule_member_tids():
                c = canon[rhs_data[row_of[tid]]]
                if c != null_c and c != const_c:
                    out.append(Violation(rule.cfd, (tid,), rhs))
            continue  # tolerant constant rules have no pair check

        # Pair check among tuples agreeing on X.  Tolerant mode skips
        # null RHS values; strict compares them like any other value.
        cfd = rule.cfd
        if only is not None:
            group_iter = index.groups_of_tids(idx, only)
        else:
            # A partition can only emit pair violations when its RHS
            # counts hold ≥ 2 distinct ``==``-classes (canon equality is
            # value equality, and so is ``value_counts``'s dict keying) —
            # skip the clean majority outright, and order the survivors
            # by smallest member tid exactly as ``iter_groups`` does over
            # all of them (omitted partitions emit nothing either way).
            # The pruning (GroupStats.is_hot + ordering) is shared with
            # the vectorized repair phases.
            group_iter = (
                (g.key, sorted(g.tids))
                for g in hot_groups(part.groups.values())
            )
        for _key, tids in group_iter:
            seen: List[Tuple[int, int]] = []
            seen_refs: Set[int] = set()
            for tid in tids:
                c = canon[rhs_data[row_of[tid]]]
                if c == null_c and not strict:
                    continue
                for other_c, witness in seen:
                    if other_c != c:
                        out.append(Violation(cfd, (witness, tid), rhs))
                if c not in seen_refs:
                    seen_refs.add(c)
                    seen.append((c, tid))
    return out


def relation_is_clean(
    relation: Relation,
    cfds: Sequence[CFD],
    mds: Sequence[MD] = (),
    master: Optional[Relation] = None,
    violation_index: Optional[Any] = None,
    md_indexes: Optional[Mapping[str, Any]] = None,
    only_tids: Optional[Any] = None,
) -> bool:
    """Whether ``D ⊨ Σ`` and ``(D, Dm) ⊨ Γ`` (null-tolerant, Section 7).

    The index-routed counterpart of :func:`repro.core.hrepair.is_clean`:
    CFD checks run over LHS partitions (one scan for all rules, or none
    when a maintained *violation_index* is supplied) and MD checks reuse
    *md_indexes* (rule name → blocking index) instead of rebuilding
    master-side structures.
    """
    from repro.indexing.blocking import MDBlockingIndex

    if cfds and relation_violations(
        relation, cfds, violation_index, only_tids=only_tids
    ):
        return False
    if master is not None:
        shared = md_indexes or {}
        for md in mds:
            for normalized in md.normalize():
                rhs, master_attr = normalized.rhs_pair
                bindex = shared.get(normalized.name)
                if bindex is None or not bindex.is_exact:
                    # A satisfaction verdict must stay exhaustive.
                    # Equality blocking and the join engine are lossless
                    # (is_exact), so their shared repair-time indexes are
                    # reused as-is; only the reference engine's top-l
                    # suffix-tree retrieval forces a fresh full-candidate
                    # index here.
                    bindex = MDBlockingIndex(
                        normalized, master, use_suffix_tree=False
                    )
                data_side = (
                    relation
                    if only_tids is None
                    else [
                        relation.by_tid(tid)
                        for tid in only_tids
                        if relation.has_tid(tid)
                    ]
                )
                for t in data_side:
                    if is_null(t[rhs]):
                        continue  # null counts as identified (Section 7)
                    for s in bindex.cached_matches(t):
                        if t[rhs] != s[master_attr]:
                            return False
    return True


def active_domains(
    schema: Schema,
    cfds: Sequence[CFD],
    mds: Sequence[MD],
    master: Optional[Relation],
    extra_fresh: int = 1,
) -> Dict[str, List[Any]]:
    """The per-attribute candidate value sets of the small-model search.

    For each attribute ``A`` of *schema*: all constants that Σ mentions
    for ``A``, all master values of attributes that Γ compares with or
    writes into ``A``, plus up to *extra_fresh* values outside that set
    when the domain permits.  The consistency search (single tuple) needs
    one fresh value per attribute ("at most an extra distinct value drawn
    from dom(Ai)", proof of Theorem 4.1); the implication search uses two
    — its two-tuple counterexample may need the tuples to *differ* on an
    attribute no constant mentions.
    """
    domains: Dict[str, Set[Any]] = {name: set() for name in schema.names}
    for cfd in cfds:
        for attr, values in cfd.constants().items():
            domains[attr].update(values)
    if master is not None:
        for md in mds:
            pairs = [(c.attr, c.master_attr) for c in md.premise]
            pairs.extend(md.rhs)
            for attr, master_attr in pairs:
                for s in master:
                    domains[attr].add(s[master_attr])
    out: Dict[str, List[Any]] = {}
    for name in schema.names:
        values = set(domains[name])
        ordered = sorted(values, key=repr)
        for _ in range(extra_fresh):
            fresh = schema.domain(name).fresh_value(values)
            if fresh is None:
                break
            values.add(fresh)
            ordered.append(fresh)
        if not ordered:
            ordered = [NULL]  # degenerate: no constraint ever mentions it
        out[name] = ordered
    return out


def _single_tuple_ok(
    t: CTuple,
    cfds: Sequence[CFD],
    mds: Sequence[MD],
    master: Optional[Relation],
    assigned: Set[str],
) -> bool:
    """Check the constraints decidable from the *assigned* attributes.

    Partial assignments are pruned with constant CFDs whose scope is fully
    assigned; MDs are checked once every premise and RHS attribute is
    assigned.
    """
    for cfd in cfds:
        scope = set(cfd.lhs) | set(cfd.rhs)
        if not scope <= assigned:
            continue
        if cfd.lhs_matches(t) and not cfd.rhs_matches(t):
            return False
    if master is not None:
        for md in mds:
            needed = set(md.lhs_attrs()) | set(md.rhs_attrs())
            if not needed <= assigned:
                continue
            for s in master:
                if md.premise_holds(t, s) and not md.identified(t, s):
                    return False
    return True


def find_witness(
    schema: Schema,
    cfds: Sequence[CFD],
    mds: Sequence[MD] = (),
    master: Optional[Relation] = None,
    max_assignments: int = 2_000_000,
) -> Optional[CTuple]:
    """Search for a single-tuple witness of consistency.

    Returns a tuple ``t`` with ``{t} ⊨ Σ`` and ``({t}, Dm) ⊨ Γ``, or
    ``None`` when no witness exists (Σ ∪ Γ inconsistent).

    Parameters
    ----------
    max_assignments:
        Budget on explored (partial) assignments; exceeded budgets raise
        ``RecursionError``-free ``InconsistentRulesError`` is *not* raised
        — instead a ``RuntimeError`` signals the search was inconclusive.
    """
    normalized_cfds: List[CFD] = []
    for cfd in cfds:
        normalized_cfds.extend(cfd.normalize())
    normalized_mds: List[MD] = []
    for md in mds:
        normalized_mds.extend(md.normalize())
    domains = active_domains(schema, normalized_cfds, normalized_mds, master)
    # Assign most-constrained attributes first: attributes mentioned by
    # many constant patterns come early so pruning bites.
    mention_count: Dict[str, int] = {name: 0 for name in schema.names}
    for cfd in normalized_cfds:
        for attr in cfd.attributes():
            mention_count[attr] += 1
    for md in normalized_mds:
        for attr in md.lhs_attrs() + md.rhs_attrs():
            mention_count[attr] += 1
    order = sorted(schema.names, key=lambda a: (-mention_count[a], a))

    t = CTuple(schema, {})
    t.tid = 0
    budget = max_assignments

    def backtrack(position: int, assigned: Set[str]) -> bool:
        nonlocal budget
        if budget <= 0:
            raise RuntimeError("consistency search exceeded its assignment budget")
        if position == len(order):
            return True
        attr = order[position]
        for value in domains[attr]:
            budget -= 1
            t[attr] = value
            assigned.add(attr)
            if _single_tuple_ok(t, normalized_cfds, normalized_mds, master, assigned):
                if backtrack(position + 1, assigned):
                    return True
            assigned.discard(attr)
            t[attr] = NULL
        return False

    if backtrack(0, set()):
        return t
    return None


def is_consistent(
    schema: Schema,
    cfds: Sequence[CFD],
    mds: Sequence[MD] = (),
    master: Optional[Relation] = None,
) -> bool:
    """Whether ``Σ ∪ Γ`` admits a nonempty satisfying instance.

    Note that any set of MDs alone is consistent (Fan et al. 2011, recalled
    in Section 4.1): with Γ only, this always returns ``True``.
    """
    return find_witness(schema, cfds, mds, master) is not None


def assert_consistent(
    schema: Schema,
    cfds: Sequence[CFD],
    mds: Sequence[MD] = (),
    master: Optional[Relation] = None,
) -> None:
    """Raise :class:`InconsistentRulesError` when ``Σ ∪ Γ`` is inconsistent.

    Cleaning only makes sense for consistent rule sets ("it does not make
    sense to derive cleaning rules from Θ before Θ is assured consistent",
    Section 4.1); UniClean calls this before deriving rules.
    """
    if find_witness(schema, cfds, mds, master) is None:
        raise InconsistentRulesError(
            "the rule set Σ ∪ Γ admits no nonempty satisfying instance"
        )
