"""Bounded termination and determinism exploration (Theorems 4.7/4.8).

Both problems are PSPACE-complete for rule-based cleaning, so no general
efficient procedure exists.  This module provides an *exact bounded
explorer* for small instances: it enumerates the state graph whose states
are relation snapshots and whose transitions are single cleaning-rule
applications, and reports

* whether every maximal path reaches a fixpoint (**terminates**),
* whether a cycle exists (**a non-terminating run exists** — e.g. the
  φ1/φ5 ping-pong of Example 4.6),
* the set of reachable fixpoints (**deterministic** iff exactly one and
  every path terminates).

State spaces explode exponentially; the explorer enforces a state budget
and reports ``exhausted=True`` when it gives up, mirroring the fact that
no sub-PSPACE shortcut is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.constraints.rules import AnyRule, ConstantCFDRule, MDRule, VariableCFDRule
from repro.relational.relation import Relation
from repro.relational.tuples import CTuple


State = Tuple[Tuple[Any, ...], ...]


def snapshot(relation: Relation) -> State:
    """An immutable snapshot of all tuple values (in tid order)."""
    return tuple(
        tuple(t[attr] for attr in relation.schema.names)
        for t in sorted(relation.tuples(), key=lambda x: x.tid or 0)
    )


def _restore(relation: Relation, state: State) -> None:
    for t, values in zip(sorted(relation.tuples(), key=lambda x: x.tid or 0), state):
        for attr, value in zip(relation.schema.names, values):
            t[attr] = value


def _successors(
    relation: Relation,
    rules: Sequence[AnyRule],
    master: Optional[Relation],
) -> List[State]:
    """All states reachable by a single rule application."""
    out: List[State] = []
    seen: Set[State] = set()
    tuples = relation.tuples()
    for rule in rules:
        if isinstance(rule, ConstantCFDRule):
            for t in tuples:
                if rule.applies(t):
                    old = t[rule.rhs_attr()]
                    t[rule.rhs_attr()] = rule.cfd.rhs_constant
                    state = snapshot(relation)
                    t[rule.rhs_attr()] = old
                    if state not in seen:
                        seen.add(state)
                        out.append(state)
        elif isinstance(rule, VariableCFDRule):
            for target in tuples:
                for donor in tuples:
                    if target.tid == donor.tid:
                        continue
                    if rule.applies(target, donor):
                        attr = rule.rhs_attr()
                        old = target[attr]
                        target[attr] = donor[attr]
                        state = snapshot(relation)
                        target[attr] = old
                        if state not in seen:
                            seen.add(state)
                            out.append(state)
        elif isinstance(rule, MDRule):
            if master is None:
                continue
            for t in tuples:
                for s in master:
                    if rule.applies(t, s):
                        attr, master_attr = rule.md.rhs_pair
                        old = t[attr]
                        t[attr] = s[master_attr]
                        state = snapshot(relation)
                        t[attr] = old
                        if state not in seen:
                            seen.add(state)
                            out.append(state)
    return out


@dataclass
class ExplorationResult:
    """Outcome of a bounded state-graph exploration.

    Attributes
    ----------
    terminates:
        ``True`` if every maximal path reaches a fixpoint, ``False`` if a
        reachable cycle exists, ``None`` when the budget was exhausted
        before deciding.
    deterministic:
        ``True`` iff the process terminates and exactly one fixpoint is
        reachable; ``False`` when several fixpoints (or a cycle) exist;
        ``None`` when undecided.
    fixpoints:
        The distinct reachable fixpoint states.
    states_explored:
        Number of distinct states visited.
    exhausted:
        Whether the exploration hit ``max_states``.
    """

    terminates: Optional[bool]
    deterministic: Optional[bool]
    fixpoints: List[State] = field(default_factory=list)
    states_explored: int = 0
    exhausted: bool = False


def explore(
    relation: Relation,
    rules: Sequence[AnyRule],
    master: Optional[Relation] = None,
    max_states: int = 10_000,
) -> ExplorationResult:
    """Exhaustively explore the cleaning state graph from *relation*.

    The input relation is not modified (exploration works on a clone).

    Examples
    --------
    The φ1/φ5 ping-pong of Example 4.6 (city flips between Edi and Ldn)
    produces ``terminates=False``; see
    ``tests/analysis/test_termination.py``.
    """
    working = relation.clone()
    start = snapshot(working)
    visited: Dict[State, List[State]] = {}
    stack: List[State] = [start]
    exhausted = False
    while stack:
        state = stack.pop()
        if state in visited:
            continue
        if len(visited) >= max_states:
            exhausted = True
            break
        _restore(working, state)
        successors = _successors(working, rules, master)
        visited[state] = successors
        for succ in successors:
            if succ not in visited:
                stack.append(succ)

    fixpoints = [s for s, succs in visited.items() if not succs]

    if exhausted:
        return ExplorationResult(
            terminates=None,
            deterministic=None,
            fixpoints=fixpoints,
            states_explored=len(visited),
            exhausted=True,
        )

    # Cycle detection on the (complete) finite graph via iterative DFS
    # with colors.
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[State, int] = {s: WHITE for s in visited}
    has_cycle = False
    for root in visited:
        if color[root] != WHITE:
            continue
        dfs_stack: List[Tuple[State, int]] = [(root, 0)]
        color[root] = GRAY
        while dfs_stack:
            node, child_index = dfs_stack[-1]
            children = visited[node]
            if child_index < len(children):
                dfs_stack[-1] = (node, child_index + 1)
                child = children[child_index]
                if color[child] == GRAY:
                    has_cycle = True
                    dfs_stack.clear()
                    break
                if color[child] == WHITE:
                    color[child] = GRAY
                    dfs_stack.append((child, 0))
            else:
                color[node] = BLACK
                dfs_stack.pop()
        if has_cycle:
            break

    terminates = not has_cycle
    deterministic = terminates and len(fixpoints) == 1
    return ExplorationResult(
        terminates=terminates,
        deterministic=deterministic,
        fixpoints=fixpoints,
        states_explored=len(visited),
        exhausted=False,
    )
