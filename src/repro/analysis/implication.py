"""Implication analysis of ``Σ ∪ Γ`` (Theorem 4.2).

``Θ ⊨ ξ`` iff every instance satisfying Θ (w.r.t. the master data) also
satisfies ξ.  The problem is coNP-complete; the upper-bound proof gives a
small-model property which this module implements exactly:

* for a **CFD** ``ξ = (X → A, tp)``: ``Θ ⊭ ξ`` iff there is a *two-tuple*
  counterexample ``D = {t, s}`` with ``t[X] = s[X] ≍ tp[X]``, ``D ⊨ Σ``,
  ``(D, Dm) ⊨ Γ`` and ``D ⊭ ξ``, with values drawn from active domains;
* for an **MD** ξ: a *single-tuple* counterexample suffices.

The search is exponential in the number of attributes (as it must be
unless P = NP) and intended for the modest rule sets of real cleaning
deployments, where it doubles as redundant-rule elimination.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analysis.consistency import active_domains
from repro.constraints.cfd import CFD, is_wildcard
from repro.constraints.md import MD
from repro.relational.attribute import NULL
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.relational.tuples import CTuple


def _instance_satisfies(
    tuples: List[CTuple],
    schema: Schema,
    cfds: Sequence[CFD],
    mds: Sequence[MD],
    master: Optional[Relation],
) -> bool:
    relation = Relation(schema)
    for t in tuples:
        relation.add(t.clone())
    for cfd in cfds:
        if not cfd.satisfied_by(relation):
            return False
    if master is not None:
        for md in mds:
            if not md.satisfied_by(relation, master):
                return False
    return True


def _violates_cfd(tuples: List[CTuple], cfd: CFD) -> bool:
    relation = Relation(tuples[0].schema)
    for t in tuples:
        relation.add(t.clone())
    return not cfd.satisfied_by(relation)


def _violates_md(tuples: List[CTuple], md: MD, master: Relation) -> bool:
    relation = Relation(tuples[0].schema)
    for t in tuples:
        relation.add(t.clone())
    return not md.satisfied_by(relation, master)


class _CounterexampleSearch:
    """Backtracking search for a small counterexample to ``Θ ⊨ ξ``."""

    def __init__(
        self,
        schema: Schema,
        cfds: Sequence[CFD],
        mds: Sequence[MD],
        master: Optional[Relation],
        target: Union[CFD, MD],
        max_assignments: int,
    ):
        self.schema = schema
        self.cfds: List[CFD] = []
        for cfd in cfds:
            self.cfds.extend(cfd.normalize())
        self.mds: List[MD] = []
        for md in mds:
            self.mds.extend(md.normalize())
        self.master = master
        # Include the target's constants in the active domains so the
        # counterexample can exercise its patterns.
        target_cfds = list(self.cfds)
        target_mds = list(self.mds)
        if isinstance(target, CFD):
            target_cfds = target_cfds + target.normalize()
        else:
            target_mds = target_mds + target.normalize()
        # Two fresh values per attribute: the two-tuple counterexample may
        # need the tuples to differ on attributes no constant mentions.
        self.domains = active_domains(
            schema, target_cfds, target_mds, master, extra_fresh=2
        )
        self.target = target
        self.budget = max_assignments

    def _enumerate(
        self, tuples: List[CTuple], cells: List[Tuple[int, str]], position: int
    ) -> bool:
        if self.budget <= 0:
            raise RuntimeError("implication search exceeded its assignment budget")
        if position == len(cells):
            if not _instance_satisfies(
                tuples, self.schema, self.cfds, self.mds, self.master
            ):
                return False
            if isinstance(self.target, CFD):
                return _violates_cfd(tuples, self.target)
            assert self.master is not None
            return _violates_md(tuples, self.target, self.master)
        index, attr = cells[position]
        for value in self.domains[attr]:
            self.budget -= 1
            tuples[index][attr] = value
            if self._enumerate(tuples, cells, position + 1):
                return True
            tuples[index][attr] = NULL
        return False

    def counterexample_exists(self, tuple_count: int) -> bool:
        tuples = [CTuple(self.schema, {}, tid=i) for i in range(tuple_count)]
        cells = [
            (i, attr) for i in range(tuple_count) for attr in self.schema.names
        ]
        return self._enumerate(tuples, cells, 0)


def implies(
    schema: Schema,
    cfds: Sequence[CFD],
    mds: Sequence[MD],
    target: Union[CFD, MD],
    master: Optional[Relation] = None,
    max_assignments: int = 5_000_000,
) -> bool:
    """Whether ``Σ ∪ Γ ⊨ target`` w.r.t. the given master data.

    Implements the coNP small-model check: searches for a two-tuple (CFD
    target) or single-tuple (MD target) counterexample over active
    domains; ``True`` means no counterexample exists.

    Notes
    -----
    A normalized multi-RHS target is handled by checking each of its
    normalized parts: Θ implies the target iff it implies every part.
    """
    parts: List[Union[CFD, MD]] = (
        list(target.normalize()) if isinstance(target, (CFD, MD)) else [target]
    )
    for part in parts:
        search = _CounterexampleSearch(schema, cfds, mds, master, part, max_assignments)
        tuple_count = 2 if isinstance(part, CFD) else 1
        if isinstance(part, MD) and master is None:
            raise ValueError("implication of an MD target requires master data")
        if search.counterexample_exists(tuple_count):
            return False
    return True


def redundant_rules(
    schema: Schema,
    cfds: Sequence[CFD],
    mds: Sequence[MD] = (),
    master: Optional[Relation] = None,
) -> List[Union[CFD, MD]]:
    """Rules implied by the remaining ones (candidates for removal).

    "The implication analysis helps us find and remove redundant rules
    from Θ ... to improve performance" (Section 4.1).  Each rule is tested
    against Θ minus itself; the returned rules can be dropped one at a
    time (dropping several simultaneously is not always sound).
    """
    out: List[Union[CFD, MD]] = []
    for i, cfd in enumerate(cfds):
        rest = [c for j, c in enumerate(cfds) if j != i]
        if implies(schema, rest, mds, cfd, master):
            out.append(cfd)
    for i, md in enumerate(mds):
        if master is None:
            break
        rest = [m for j, m in enumerate(mds) if j != i]
        if implies(schema, cfds, rest, md, master):
            out.append(md)
    return out
