"""Static analyses of data quality rules (Section 4 of the paper).

* Consistency of ``Σ ∪ Γ`` — NP-complete; exact small-model search
  (:mod:`repro.analysis.consistency`).
* Implication ``Θ ⊨ ξ`` — coNP-complete; exact two-tuple/one-tuple
  counterexample search (:mod:`repro.analysis.implication`).
* Termination / determinism of rule-based cleaning — PSPACE-complete;
  exact bounded state-graph exploration
  (:mod:`repro.analysis.termination`).
* The rule dependency graph and eRepair ordering
  (:mod:`repro.analysis.dependency_graph`).
"""

from repro.analysis.consistency import (
    active_domains,
    assert_consistent,
    find_witness,
    is_consistent,
    relation_is_clean,
    relation_violations,
)
from repro.analysis.dependency_graph import (
    build_dependency_graph,
    degree_ratios,
    order_rules,
    strongly_connected_components,
)
from repro.analysis.implication import implies, redundant_rules
from repro.analysis.termination import ExplorationResult, explore, snapshot

__all__ = [
    "ExplorationResult",
    "active_domains",
    "assert_consistent",
    "build_dependency_graph",
    "degree_ratios",
    "explore",
    "find_witness",
    "implies",
    "is_consistent",
    "order_rules",
    "redundant_rules",
    "relation_is_clean",
    "relation_violations",
    "snapshot",
    "strongly_connected_components",
]
