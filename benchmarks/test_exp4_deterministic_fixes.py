"""Exp-4 (Fig. 13a/b): impact of dup% and asr% on deterministic fixes.

Paper: "the larger dup% is, the more deterministic fixes are found" and
"the number of deterministic fixes found by cRepair highly depends on
asr%" (cleaning rules only fire from asserted attributes).
"""

import pytest

from repro.evaluation import exp4_deterministic_fixes, format_table

from .conftest import MASTER, SIZE

DUP_RATES = (0.2, 0.6, 1.0)
ASR_RATES = (0.0, 0.4, 0.8)


def _run(dataset: str):
    return exp4_deterministic_fixes(
        dataset,
        duplicate_rates=DUP_RATES,
        asserted_rates=ASR_RATES,
        size=SIZE,
        master_size=MASTER,
    )


@pytest.mark.parametrize("dataset", ["hosp", "dblp"])
def test_exp4_fig13(benchmark, dataset):
    out = benchmark.pedantic(_run, args=(dataset,), rounds=1, iterations=1)
    print()
    print(format_table(out["by_dup"], f"Exp-4 / Fig. 13a ({dataset}): det%% vs dup%%"))
    print(format_table(out["by_asr"], f"Exp-4 / Fig. 13b ({dataset}): det%% vs asr%%"))
    by_dup = [row["det_pct"] for row in out["by_dup"]]
    by_asr = [row["det_pct"] for row in out["by_asr"]]
    # Fig. 13a: broadly non-decreasing in dup% (small sampling wiggle ok).
    assert by_dup[-1] >= by_dup[0] - 5.0
    # Fig. 13b: strongly increasing in asr%.
    assert by_asr[0] <= by_asr[1] <= by_asr[2] + 5.0
    assert by_asr[2] > by_asr[0]
