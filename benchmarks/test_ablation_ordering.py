"""Ablation: eRepair's dependency-graph rule ordering (Section 6.2).

The order exists to "avoid unnecessary computation": upstream rules run
first so downstream ones see repaired premises.  Both orders converge (the
outer loop repeats to fixpoint); the ordered run should not need *more*
passes than the reversed one.
"""

import pytest

from repro.analysis import order_rules
from repro.constraints import derive_rules
from repro.core.erepair import _ERepair
from repro.core.fixes import FixLog
from repro.datasets import generate_hosp


def _rounds_with_order(ds, reverse: bool) -> int:
    rules = derive_rules(ds.cfds, ds.mds)
    state = _ERepair(
        ds.dirty.clone(),
        rules,
        ds.master,
        delta1=3,
        delta2=0.8,
        protected=set(),
        fix_log=FixLog(),
        top_l=20,
        use_suffix_tree=True,
    )
    if reverse:
        # Rebuild every per-rule index map for the reversed order.
        state.rebind_rules(list(reversed(state.rules)))
    try:
        state.run()
    finally:
        state.close()
    return state.rounds


def test_ordering_reduces_rounds(benchmark):
    ds = generate_hosp(size=200, master_size=100, noise_rate=0.06)

    def run_both():
        ordered = _rounds_with_order(ds, reverse=False)
        reversed_rounds = _rounds_with_order(ds, reverse=True)
        return ordered, reversed_rounds

    ordered, reversed_rounds = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print()
    print(f"  eRepair passes, dependency order: {ordered}")
    print(f"  eRepair passes, reversed order:   {reversed_rounds}")
    assert ordered <= reversed_rounds


def test_order_rules_is_cheap(benchmark):
    ds = generate_hosp(size=100, master_size=60)
    rules = derive_rules(ds.cfds, ds.mds)
    ordered = benchmark(order_rules, rules)
    assert len(ordered) == len(rules)
