"""Exp-2 (Fig. 11a/b): repairing helps matching.

Paper: "Uni outperforms SortN(MD) by up to 15%, verifying that repairing
indeed helps matching.  The F-measure decreases when the noise rate
increases for both approaches."
"""

import pytest

from repro.evaluation import exp2_repairing_helps_matching, format_table

from .conftest import MASTER, NOISE_RATES, SIZE


def _run(dataset: str):
    return exp2_repairing_helps_matching(
        dataset, noise_rates=NOISE_RATES, size=SIZE, master_size=MASTER, window=10
    )


@pytest.mark.parametrize("dataset", ["hosp", "dblp"])
def test_exp2_fig11(benchmark, dataset):
    rows = benchmark.pedantic(_run, args=(dataset,), rounds=1, iterations=1)
    print()
    print(format_table(rows, f"Exp-2 / Fig. 11 ({dataset}): matching F-measure"))
    for row in rows:
        assert row["uni_f1"] >= row["sortn_f1"] - 0.03, row
    # Matching after repair stays strong even at the top noise rate.
    assert rows[-1]["uni_f1"] >= 0.7


def test_exp2_gap_on_hosp(benchmark):
    """On HOSP the Uni-vs-SortN gap must be visible (the paper reports up
    to 15 points)."""
    rows = benchmark.pedantic(_run, args=("hosp",), rounds=1, iterations=1)
    assert any(r["uni_f1"] > r["sortn_f1"] + 0.03 for r in rows)
