"""Repair-pipeline performance report: the perf trajectory across PRs.

Two workloads, both written to ``BENCH_repair.json``:

1. **Batch** (Exp-5 scalability, HOSP): the full pipeline at three sizes
   with the indexed rule engine and with the legacy full-rescan baseline
   (``use_violation_index=False``) — rows ``{size, phase, seconds,
   fixes, engine}`` plus per-size speedups.  The script asserts that
   both engines produce identical fix logs (the determinism guarantee of
   the violation index).
2. **Incremental** (the ``CleaningSession`` delta path): one initial
   ``clean()`` at the largest size, then N micro-batches of k cell
   edits applied via ``session.apply()``, each compared against a cold
   from-scratch ``UniClean.clean()`` of the edited base — rows
   ``{batch, scenario, apply_s, full_s, speedup, mode, affected,
   state_identical}``.  Two edit scenarios run: ``catalog`` (corrections
   to pure target attributes — the provably-local scoped replay) and
   ``mixed`` (uniformly random attributes — mostly the warm full-replay
   fallback).  The script asserts **state equivalence** for every batch;
   timing numbers are informational only, so CI stays robust to noisy
   runners.
3. **Sharded** (the ``ShardedCleaningSession`` partition-parallel path,
   PART testbed): one unsharded ``clean()`` and one process-pool
   sharded ``clean()`` over the same block-partitioned dataset,
   followed by catalog-style micro-batches applied to both.  The script
   asserts that the repaired relation, the per-cell cost total, the
   satisfaction verdict **and the full ordered fix log** are identical;
   timings (and the parallel speedup) are informational only.  The
   speedup column is only meaningful when the machine actually has
   ``n_workers`` cores — the summary records ``cpu_count`` so a 0.x
   "speedup" on a 1-core CI runner reads as what it is (process
   overhead), not a regression.
4. **Replan** (ISSUE 4 incremental re-planning): re-plan-heavy
   micro-batches (each leads with inserts that grow one block's
   coupling component) applied through ``apply_many`` to a sharded
   session with component-stable shard ids, against an unsharded
   reference applying the concatenated batch.  Rows record
   ``shards_recleaned``/``shards_reused`` per batch and the
   coordinator↔worker payload bytes (columnar vs the PR 3 pickled
   form).  The script asserts byte-identical state, that re-plans
   reuse unaffected shards (``shards_recleaned`` tracks touched
   components, not total shards), and that columnar payloads are
   ≤ 50% of the PR 3 bytes — all structural checks; wall-clock is
   never asserted.
5. **Snapshot** (ISSUE 5 durable session snapshots): a sharded session
   over the PART re-plan workload is saved mid-stream (after
   ``--snapshot-cut`` batches), restored into a fresh engine, and both
   the restored and a never-stopped control session run the remaining
   batches.  Rows record per-batch state equivalence and shard-reuse
   counters (restored vs control); the summary adds the snapshot size in
   bytes and structural acceptance flags — the restored trajectory must
   be byte-identical, the restored session's reuse counters must match
   the control's, and the first post-restore re-plan must *reuse*
   restored shards rather than re-clean them.  Wall-clock for
   save/restore is recorded but, as everywhere in this script, never
   asserted.
6. **Columnar** (ISSUE 7 columnar resident core): a 1M-row PART-style
   blocking-scan/check workload — build the relation, bulk-build its
   group stores + violation index, and run the full CFD check — once on
   the per-tuple dict backend with the reference engine and once on the
   columnar backend with the vectorized engine.  Rows record relation
   build, partition bulk build (``index_s``) and check-scan
   (``check_s``) seconds plus the tracemalloc ``peak_mem_bytes`` of
   each resident representation; the summary records the check-scan
   speedup (the hot loop every repair round repeats over the maintained
   partitions), the one-off index-build and end-to-end speedups, and
   the memory ratio.  The script asserts that both engines report the **identical
   violation list** and that the columnar representation peaks lower
   than the per-tuple one (both structural); the speedup is recorded,
   never asserted.  The ``replan`` scenario additionally records the
   wire-payload byte delta between the columnar ref-bridge encode and
   the forced per-tuple encode of the same relation and asserts the two
   blobs are byte-identical (delta 0).
7. **Repair-engine** (ISSUE 8 columnar repair kernels): one full traced
   ``CleaningSession.clean()`` of the PART testbed on the columnar
   backend under ``REPRO_REPAIR_ENGINE=reference`` and
   ``=vectorized``.  Rows record the per-phase seconds (``setup`` /
   ``crepair`` / ``erepair`` / ``hrepair``) and the tracemalloc peak of
   each run; the summary records per-phase and total speedups.  The
   script asserts that the ordered fix log, repaired state, cost,
   verdict and phase traces are **byte-identical** between the engines;
   timings and memory are informational only.
8. **Match-engine** (ISSUE 9 set-based similarity join): a scaled
   DBLP-style master (``--match-size`` rows, default 500K) probed with
   typo'd/exact/foreign titles under a pure-similarity MD, once with
   the filtered inverted-index join (``REPRO_MATCH_ENGINE=join``) and
   once with the exhaustive full scan the reference engine falls back
   to on ``use_suffix_tree=False`` (the exact comparator — top-``l``
   retrieval is lossy, so it cannot anchor a match-identity check).
   Rows record index build / lookup seconds, candidates examined,
   similarity verify calls and the tracemalloc peak per engine.  The
   script asserts that the per-probe match lists are **identical** and
   that the join engine verified **fewer** pairs than the scan — both
   structural; wall-clock is recorded, never asserted.
9. **Faults** (ISSUE 6 fault-tolerant execution): the same sharded
   clean + micro-batch workload run under a battery of named fault
   schedules (worker crash, torn response frame, hang + timeout,
   transient error, persistent crash forcing escalation to the serial
   fallback) via the deterministic injector in
   :mod:`repro.pipeline.faults`, plus one auto-checkpointed run that is
   restored from its newest checkpoint.  Every schedule must finish
   **byte-identical** to the fault-free reference; rows record the
   recovery counters (``dispatch_retries``, ``dispatch_timeouts``,
   ``worker_respawns``, ``serial_fallbacks``) and the recovery overhead
   in seconds — the equivalence flags are asserted on, wall-clock never
   is.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf_report.py
    PYTHONPATH=src python benchmarks/perf_report.py --sizes 240 480 960
    PYTHONPATH=src python benchmarks/perf_report.py --sharded-size 100000 \
        --sharded-workers 8 --sharded-blocks 64
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path
from typing import Any, Dict, List

from repro.core import UniClean, UniCleanConfig
from repro.evaluation import generate, run_uniclean
from repro.pipeline import Changeset, CleaningSession, ShardedCleaningSession

DEFAULT_SIZES = (240, 480, 960)
PHASES = ("crepair", "erepair", "hrepair")
#: HOSP attributes that are pure rule targets with stable group keys —
#: catalog-style corrections that the scoped replay covers.
CATALOG_ATTRS = ("measure_name", "condition")


def _fingerprint(log) -> List[tuple]:
    return [
        (f.kind.value, f.rule_name, f.tid, f.attr, repr(f.old_value),
         repr(f.new_value), repr(f.source))
        for f in log
    ]


def _state(relation) -> Dict[int, tuple]:
    names = relation.schema.names
    return {t.tid: tuple(repr(t[a]) for a in names) for t in relation}


def run_report(
    sizes=DEFAULT_SIZES,
    dataset: str = "hosp",
    noise_rate: float = 0.06,
    seed: int = 7,
) -> Dict[str, Any]:
    """Run the workload at each size with both engines; return the report."""
    rows: List[Dict[str, Any]] = []
    summary: List[Dict[str, Any]] = []
    for size in sizes:
        ds = generate(
            dataset, size=size, master_size=max(size // 2, 1),
            noise_rate=noise_rate, seed=seed,
        )
        results = {}
        for engine, flag in (("indexed", True), ("legacy", False)):
            result = run_uniclean(
                ds, UniCleanConfig(eta=1.0, use_violation_index=flag)
            )
            results[engine] = result
            phase_fixes = {
                "crepair": result.crepair_result.deterministic_fixes,
                "erepair": result.erepair_result.reliable_fixes,
                "hrepair": result.hrepair_result.possible_fixes,
            }
            for phase in PHASES:
                rows.append(
                    {
                        "size": size,
                        "phase": phase,
                        "seconds": round(result.timings.get(phase, 0.0), 6),
                        "fixes": phase_fixes[phase],
                        "engine": engine,
                    }
                )
        identical = _fingerprint(results["indexed"].fix_log) == _fingerprint(
            results["legacy"].fix_log
        )
        t_indexed = results["indexed"].total_time
        t_legacy = results["legacy"].total_time
        summary.append(
            {
                "size": size,
                "indexed_s": round(t_indexed, 6),
                "legacy_s": round(t_legacy, 6),
                "speedup": round(t_legacy / t_indexed, 2) if t_indexed > 0 else None,
                "fix_logs_identical": identical,
                "clean": results["indexed"].clean,
            }
        )
    return {
        "workload": {"dataset": dataset, "noise_rate": noise_rate, "seed": seed},
        "rows": rows,
        "summary": summary,
    }


def run_incremental_report(
    size: int,
    batches: int = 5,
    edits_per_batch: int = 10,
    dataset: str = "hosp",
    noise_rate: float = 0.06,
    seed: int = 7,
) -> Dict[str, Any]:
    """Clean once, then apply N micro-batches of k edits incrementally.

    Each batch is verified for state equivalence against a cold
    from-scratch clean of the edited base.
    """
    ds = generate(
        dataset, size=size, master_size=max(size // 2, 1),
        noise_rate=noise_rate, seed=seed,
    )
    config = UniCleanConfig(eta=1.0)
    rng = random.Random(seed)
    rows: List[Dict[str, Any]] = []
    scenarios = {
        "catalog": [a for a in CATALOG_ATTRS if a in ds.schema],
        "mixed": list(ds.schema.names),
    }
    summary: List[Dict[str, Any]] = []
    for scenario, attr_pool in scenarios.items():
        if not attr_pool:
            continue
        session = CleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config
        )
        started = time.perf_counter()
        initial = session.clean(ds.dirty)
        clean_s = time.perf_counter() - started
        tids = list(session.base.tids())
        apply_total = full_total = 0.0
        all_identical = True
        scoped_batches = 0
        for batch in range(batches):
            changeset = Changeset()
            for _ in range(edits_per_batch):
                attr = rng.choice(attr_pool)
                donor = session.base.by_tid(rng.choice(tids))
                changeset.edit(rng.choice(tids), attr, donor[attr])
            started = time.perf_counter()
            out = session.apply(changeset)
            apply_s = time.perf_counter() - started
            started = time.perf_counter()
            reference = UniClean(
                cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config
            ).clean(session.base)
            full_s = time.perf_counter() - started
            identical = _state(out.repaired) == _state(reference.repaired)
            all_identical &= identical
            scoped_batches += 0 if out.full_reclean else 1
            apply_total += apply_s
            full_total += full_s
            rows.append(
                {
                    "scenario": scenario,
                    "batch": batch,
                    "apply_s": round(apply_s, 6),
                    "full_s": round(full_s, 6),
                    "speedup": round(full_s / apply_s, 2) if apply_s > 0 else None,
                    "mode": "full_reclean" if out.full_reclean else "scoped",
                    "affected": out.affected,
                    "affected_cells": out.affected_cells,
                    "state_identical": identical,
                    "clean": out.clean,
                }
            )
        summary.append(
            {
                "scenario": scenario,
                "size": size,
                "batches": batches,
                "edits_per_batch": edits_per_batch,
                "initial_clean_s": round(clean_s, 6),
                "initial_clean": initial.clean,
                "apply_total_s": round(apply_total, 6),
                "full_total_s": round(full_total, 6),
                "speedup": round(full_total / apply_total, 2) if apply_total else None,
                "scoped_batches": scoped_batches,
                "all_state_identical": all_identical,
            }
        )
    return {
        "workload": {
            "dataset": dataset,
            "size": size,
            "noise_rate": noise_rate,
            "seed": seed,
        },
        "rows": rows,
        "summary": summary,
    }


def _full_state(relation) -> Dict[int, tuple]:
    names = relation.schema.names
    return {
        t.tid: tuple((repr(t[a]), t.conf(a)) for a in names) for t in relation
    }


def run_sharded_report(
    size: int = 4000,
    n_blocks: int = 16,
    n_workers: int = 2,
    batches: int = 3,
    edits_per_batch: int = 8,
    noise_rate: float = 0.04,
    seed: int = 11,
) -> Dict[str, Any]:
    """Partition-parallel vs unsharded cleaning on the PART testbed.

    Asserts byte-identical observable state (relation, costs, verdict,
    ordered fix log) for the initial clean and every micro-batch; the
    recorded speedups are informational only.
    """
    ds = generate(
        "partitioned", size=size, n_blocks=n_blocks,
        noise_rate=noise_rate, seed=seed,
    )
    config = UniCleanConfig(eta=1.0)
    rng = random.Random(seed)
    rows: List[Dict[str, Any]] = []

    reference = CleaningSession(
        cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config
    )
    started = time.perf_counter()
    reference_clean = reference.clean(ds.dirty)
    unsharded_s = time.perf_counter() - started

    sharded = ShardedCleaningSession(
        cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config,
        n_workers=n_workers, n_shards=n_workers,
    )
    try:
        started = time.perf_counter()
        sharded_clean = sharded.clean(ds.dirty)
        sharded_s = time.perf_counter() - started

        identical = (
            _full_state(reference_clean.repaired)
            == _full_state(sharded_clean.repaired)
            and _fingerprint(reference_clean.fix_log)
            == _fingerprint(sharded_clean.fix_log)
            and abs(reference_clean.cost - sharded_clean.cost) < 1e-9
            and reference_clean.clean == sharded_clean.clean
        )
        all_identical = identical
        rows.append(
            {
                "stage": "clean",
                "unsharded_s": round(unsharded_s, 6),
                "sharded_s": round(sharded_s, 6),
                "speedup": round(unsharded_s / sharded_s, 2) if sharded_s else None,
                "state_identical": identical,
            }
        )

        catalog_attrs = [a for a in ("cat", "score") if a in ds.schema]
        tids = list(reference.base.tids())
        for batch in range(batches):
            changeset = Changeset()
            for _ in range(edits_per_batch):
                attr = rng.choice(catalog_attrs)
                donor = reference.base.by_tid(rng.choice(tids))
                changeset.edit(rng.choice(tids), attr, donor[attr])
            started = time.perf_counter()
            reference_out = reference.apply(Changeset(list(changeset.ops)))
            unsharded_apply_s = time.perf_counter() - started
            started = time.perf_counter()
            sharded_out = sharded.apply(Changeset(list(changeset.ops)))
            sharded_apply_s = time.perf_counter() - started
            identical = (
                _full_state(reference_out.repaired)
                == _full_state(sharded_out.repaired)
                and _fingerprint(reference_out.fix_log)
                == _fingerprint(sharded_out.fix_log)
                and abs(reference_out.cost - sharded_out.cost) < 1e-9
                and reference_out.clean == sharded_out.clean
            )
            all_identical &= identical
            rows.append(
                {
                    "stage": f"apply[{batch}]",
                    "unsharded_s": round(unsharded_apply_s, 6),
                    "sharded_s": round(sharded_apply_s, 6),
                    "speedup": round(unsharded_apply_s / sharded_apply_s, 2)
                    if sharded_apply_s
                    else None,
                    "mode": "full_reclean" if sharded_out.full_reclean else "scoped",
                    "state_identical": identical,
                }
            )
        summary = {
            "size": size,
            "n_blocks": n_blocks,
            "n_workers": n_workers,
            "cpu_count": os.cpu_count(),
            "n_shards": sharded.plan.n_shards,
            "degenerate_plan": sharded.plan.degenerate,
            "collision_retries": sharded.stats["collision_retries"],
            "scoped_applies": sharded.stats["scoped_applies"],
            "unsharded_clean_s": round(unsharded_s, 6),
            "sharded_clean_s": round(sharded_s, 6),
            "clean_speedup": round(unsharded_s / sharded_s, 2) if sharded_s else None,
            "all_state_identical": all_identical,
        }
    finally:
        sharded.close()
    return {
        "workload": {
            "dataset": "partitioned",
            "size": size,
            "n_blocks": n_blocks,
            "noise_rate": noise_rate,
            "seed": seed,
        },
        "rows": rows,
        "summary": summary,
    }


def run_replan_report(
    size: int = 4000,
    n_blocks: int = 16,
    n_workers: int = 2,
    n_shards: int = 8,
    batches: int = 5,
    inserts_per_batch: int = 1,
    edits_per_batch: int = 4,
    noise_rate: float = 0.04,
    seed: int = 11,
) -> Dict[str, Any]:
    """Incremental re-planning on the PART testbed (ISSUE 4).

    Asserts byte-identical observable state per batch, shard-session
    reuse across re-plans, and the columnar-payload size bound; records
    per-batch ``shards_recleaned`` and coordinator byte counters.
    """
    from repro.datasets import replan_batch

    ds = generate(
        "partitioned", size=size, n_blocks=n_blocks,
        noise_rate=noise_rate, seed=seed,
    )
    config = UniCleanConfig(eta=1.0)
    rng = random.Random(seed)
    rows: List[Dict[str, Any]] = []

    reference = CleaningSession(
        cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config
    )
    started = time.perf_counter()
    reference_clean = reference.clean(ds.dirty)
    unsharded_s = time.perf_counter() - started

    sharded = ShardedCleaningSession(
        cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config,
        n_workers=n_workers, n_shards=n_shards,
        track_legacy_bytes=n_workers > 1,
    )
    try:
        started = time.perf_counter()
        sharded_clean = sharded.clean(ds.dirty)
        sharded_s = time.perf_counter() - started
        all_identical = (
            _full_state(reference_clean.repaired)
            == _full_state(sharded_clean.repaired)
            and _fingerprint(reference_clean.fix_log)
            == _fingerprint(sharded_clean.fix_log)
        )
        clean_stats = dict(sharded.stats)
        n_shards_planned = sharded.plan.n_shards

        total_recleaned = total_reused = 0
        for batch in range(batches):
            changesets = replan_batch(
                reference.base, rng,
                inserts=inserts_per_batch, edits=edits_per_batch,
            )
            before = dict(sharded.stats)
            started = time.perf_counter()
            reference_out = reference.apply_many(
                [Changeset(list(cs.ops)) for cs in changesets]
            )
            unsharded_apply_s = time.perf_counter() - started
            started = time.perf_counter()
            sharded_out = sharded.apply_many(
                [Changeset(list(cs.ops)) for cs in changesets]
            )
            sharded_apply_s = time.perf_counter() - started
            identical = (
                _full_state(reference_out.repaired)
                == _full_state(sharded_out.repaired)
                and _fingerprint(reference_out.fix_log)
                == _fingerprint(sharded_out.fix_log)
                and abs(reference_out.cost - sharded_out.cost) < 1e-9
                and reference_out.clean == sharded_out.clean
            )
            all_identical &= identical
            recleaned = (
                sharded.stats["shards_recleaned"] - before["shards_recleaned"]
            )
            reused = sharded.stats["shards_reused"] - before["shards_reused"]
            total_recleaned += recleaned
            total_reused += reused
            rows.append(
                {
                    "batch": batch,
                    "unsharded_s": round(unsharded_apply_s, 6),
                    "sharded_s": round(sharded_apply_s, 6),
                    "shards_recleaned": recleaned,
                    "shards_reused": reused,
                    "coordinator_bytes": (
                        sharded.stats["bytes_to_workers"]
                        + sharded.stats["bytes_from_workers"]
                        - before["bytes_to_workers"]
                        - before["bytes_from_workers"]
                    ),
                    "legacy_bytes": (
                        sharded.stats["legacy_bytes_to_workers"]
                        + sharded.stats["legacy_bytes_from_workers"]
                        - before["legacy_bytes_to_workers"]
                        - before["legacy_bytes_from_workers"]
                    ),
                    "state_identical": identical,
                }
            )

        # Wire-bridge check (ISSUE 7): the columnar ref-bridge encode of
        # the session base must emit the byte-identical blob the forced
        # per-tuple encode produces — the recorded delta must be 0.
        import pickle

        from repro.pipeline import payload as _payload
        from repro.relational import columns as _relcolumns

        base = reference.base
        columnar_table = _payload.ValueTable()
        columnar_blob = pickle.dumps(
            (_payload.encode_relation(base, columnar_table),
             columnar_table.values),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        with _relcolumns.using_backend(False):
            flat_base = pickle.loads(pickle.dumps(base))
        tuple_table = _payload.ValueTable()
        tuple_blob = pickle.dumps(
            (_payload.encode_relation(flat_base, tuple_table),
             tuple_table.values),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        encode_bytes_delta = len(columnar_blob) - len(tuple_blob)
        encode_identical = columnar_blob == tuple_blob

        stats = sharded.stats
        coordinator_bytes = (
            stats["bytes_to_workers"] + stats["bytes_from_workers"]
        )
        legacy_bytes = (
            stats["legacy_bytes_to_workers"]
            + stats["legacy_bytes_from_workers"]
        )
        payload_ratio = (
            round(coordinator_bytes / legacy_bytes, 4) if legacy_bytes else None
        )
        summary = {
            "size": size,
            "n_blocks": n_blocks,
            "n_workers": n_workers,
            "n_shards": n_shards_planned,
            "cpu_count": os.cpu_count(),
            "batches": batches,
            "inserts_per_batch": inserts_per_batch,
            "edits_per_batch": edits_per_batch,
            "unsharded_clean_s": round(unsharded_s, 6),
            "sharded_clean_s": round(sharded_s, 6),
            "clean_bytes": clean_stats["bytes_to_workers"]
            + clean_stats["bytes_from_workers"],
            "shards_recleaned_total": total_recleaned,
            "shards_reused_total": total_reused,
            "collision_retries": stats["collision_retries"],
            "coordinator_bytes": coordinator_bytes,
            "legacy_bytes": legacy_bytes,
            "payload_ratio": payload_ratio,
            "columnar_encode_bytes": len(columnar_blob),
            "tuple_encode_bytes": len(tuple_blob),
            "encode_bytes_delta": encode_bytes_delta,
            "all_state_identical": all_identical,
            # Structural acceptance flags (never wall-clock):
            "reuse_effective": total_reused > 0
            and total_recleaned < batches * n_shards_planned,
            "payload_bound_met": payload_ratio is None
            or payload_ratio <= 0.5,
            "encode_identical": encode_identical,
        }
    finally:
        sharded.close()
    return {
        "workload": {
            "dataset": "partitioned",
            "size": size,
            "n_blocks": n_blocks,
            "noise_rate": noise_rate,
            "seed": seed,
        },
        "rows": rows,
        "summary": summary,
    }


def run_snapshot_report(
    size: int = 4000,
    n_blocks: int = 16,
    n_workers: int = 2,
    n_shards: int = 8,
    batches: int = 4,
    cut: int = 2,
    inserts_per_batch: int = 1,
    edits_per_batch: int = 4,
    noise_rate: float = 0.04,
    seed: int = 11,
) -> Dict[str, Any]:
    """Mid-stream save/restore on the PART re-plan workload (ISSUE 5).

    A control session runs the whole workload uninterrupted; the subject
    session is saved to disk after *cut* batches, restored into a fresh
    engine, and must finish the workload byte-identically — with its
    first post-restore re-plan reusing restored shards, not re-cleaning
    them.  All asserted conditions are structural; timings and the
    snapshot size are informational.
    """
    import shutil
    import tempfile

    from repro.datasets import replan_batch

    ds = generate(
        "partitioned", size=size, n_blocks=n_blocks,
        noise_rate=noise_rate, seed=seed,
    )
    config = UniCleanConfig(eta=1.0)
    rng = random.Random(seed)
    rows: List[Dict[str, Any]] = []

    control = ShardedCleaningSession(
        cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config,
        n_workers=n_workers, n_shards=n_shards,
    )
    subject = ShardedCleaningSession(
        cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config,
        n_workers=n_workers, n_shards=n_shards,
    )
    snap_dir = tempfile.mkdtemp(prefix="ucsnap-bench-")
    snapshot_bytes = 0
    save_s = restore_s = 0.0
    all_identical = True
    counters_match = True
    restored_reused = restored_recleaned = -1
    control_reused = control_recleaned = -1
    try:
        control.clean(ds.dirty)
        subject.clean(ds.dirty)
        # The save point must precede a batch, or no restore ever runs
        # and the acceptance flags would blame a divergence that never
        # happened.
        cut = max(0, min(cut, batches - 1))
        for batch in range(batches):
            if batch == cut:
                started = time.perf_counter()
                snapshot_bytes = subject.save(snap_dir)
                save_s = time.perf_counter() - started
                subject.close()
                started = time.perf_counter()
                subject = ShardedCleaningSession.restore(snap_dir)
                restore_s = time.perf_counter() - started
            changesets = replan_batch(
                control.base, rng,
                inserts=inserts_per_batch, edits=edits_per_batch,
            )
            before_c = dict(control.stats)
            before_s = dict(subject.stats)
            started = time.perf_counter()
            control_out = control.apply_many(
                [Changeset(list(cs.ops)) for cs in changesets]
            )
            control_s = time.perf_counter() - started
            started = time.perf_counter()
            subject_out = subject.apply_many(
                [Changeset(list(cs.ops)) for cs in changesets]
            )
            subject_s = time.perf_counter() - started
            identical = (
                _full_state(control_out.repaired)
                == _full_state(subject_out.repaired)
                and _fingerprint(control_out.fix_log)
                == _fingerprint(subject_out.fix_log)
                and abs(control_out.cost - subject_out.cost) < 1e-9
                and control_out.clean == subject_out.clean
            )
            all_identical &= identical
            reused_c = control.stats["shards_reused"] - before_c["shards_reused"]
            recleaned_c = (
                control.stats["shards_recleaned"]
                - before_c["shards_recleaned"]
            )
            reused_s = subject.stats["shards_reused"] - before_s["shards_reused"]
            recleaned_s = (
                subject.stats["shards_recleaned"]
                - before_s["shards_recleaned"]
            )
            if batch == cut:
                restored_reused, restored_recleaned = reused_s, recleaned_s
                control_reused, control_recleaned = reused_c, recleaned_c
            counters_match &= (reused_c, recleaned_c) == (
                reused_s, recleaned_s,
            )
            rows.append(
                {
                    "batch": batch,
                    "restored": batch >= cut,
                    "control_s": round(control_s, 6),
                    "subject_s": round(subject_s, 6),
                    "shards_reused": reused_s,
                    "shards_recleaned": recleaned_s,
                    "state_identical": identical,
                }
            )
        summary = {
            "size": size,
            "n_blocks": n_blocks,
            "n_workers": n_workers,
            "n_shards": n_shards,
            "cpu_count": os.cpu_count(),
            "batches": batches,
            "cut": cut,
            "inserts_per_batch": inserts_per_batch,
            "edits_per_batch": edits_per_batch,
            "snapshot_bytes": snapshot_bytes,
            "save_s": round(save_s, 6),
            "restore_s": round(restore_s, 6),
            "all_state_identical": all_identical,
            # Structural acceptance flags (never wall-clock):
            "reuse_counters_match": counters_match,
            "restored_reuse_effective": restored_reused > 0
            and restored_reused == control_reused
            and restored_recleaned == control_recleaned,
        }
    finally:
        control.close()
        subject.close()
        shutil.rmtree(snap_dir, ignore_errors=True)
    return {
        "workload": {
            "dataset": "partitioned",
            "size": size,
            "n_blocks": n_blocks,
            "noise_rate": noise_rate,
            "seed": seed,
        },
        "rows": rows,
        "summary": summary,
    }


def run_columnar_report(
    size: int = 1_000_000,
    n_blocks: int = 1024,
    noise_rate: float = 0.04,
    seed: int = 11,
) -> Dict[str, Any]:
    """Columnar resident core vs per-tuple representation (ISSUE 7).

    One blocking-scan/check workload — build the relation, bulk-build
    the group stores and violation index behind it, then run the full
    CFD check over the maintained partitions — measured on both
    backings.  Index build (``index_s``) and the check scan
    (``check_s``) are timed separately: the repair pipeline builds its
    partitions once per session and re-checks every resolution round,
    so the check scan is the repeated blocking-scan/check hot loop and
    ``scan_speedup`` compares exactly that.  The cyclic GC is parked
    during the timed regions (collector pauses over a multi-million
    object heap would otherwise dominate both engines equally).
    ``peak_mem_bytes`` is the tracemalloc peak while building and
    holding each resident representation of the same rows.  Asserted:
    identical violation lists and the columnar representation peaking
    below the per-tuple one.  Recorded, never asserted: seconds and
    speedups.
    """
    import gc
    import tracemalloc

    from repro.analysis.consistency import relation_violations
    from repro.constraints.rules import derive_rules
    from repro.indexing.group_store import GroupStoreRegistry
    from repro.indexing.violation_index import ViolationIndex
    from repro.relational import Relation
    from repro.relational import columns as _relcolumns

    ds = generate(
        "partitioned", size=size, n_blocks=n_blocks,
        noise_rate=noise_rate, seed=seed,
    )
    schema = ds.dirty.schema
    names = schema.names
    raw_rows = [
        ([t[a] for a in names], [t.conf(a) for a in names])
        for t in ds.dirty
    ]
    cfds = ds.cfds
    rules = derive_rules(cfds, ds.mds)
    del ds
    gc.collect()

    def build(columnar: bool):
        tracemalloc.start()
        with _relcolumns.using_backend(columnar):
            relation = Relation(schema)
        append = relation.append_row_values
        started = time.perf_counter()
        for values, confs in raw_rows:
            append(values, confs)
        build_s = time.perf_counter() - started
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return relation, build_s, peak

    def scan(relation, engine: str):
        gc.collect()
        gc.disable()
        try:
            with _relcolumns.using_engine(engine):
                started = time.perf_counter()
                registry = GroupStoreRegistry(relation, attach=False)
                registry.ensure_rules(rules)
                index = ViolationIndex(
                    relation, derive_rules(cfds), attach=False, registry=registry
                )
                index_s = time.perf_counter() - started
                started = time.perf_counter()
                violations = relation_violations(
                    relation, cfds, violation_index=index
                )
                check_s = time.perf_counter() - started
        finally:
            gc.enable()
        fingerprint = [
            (v.constraint.name, v.tids, v.attr) for v in violations
        ]
        return fingerprint, index_s, check_s

    rows: List[Dict[str, Any]] = []

    relation, build_s, dict_peak = build(columnar=False)
    reference_violations, ref_index_s, ref_check_s = scan(relation, "reference")
    rows.append(
        {
            "backend": "dict",
            "engine": "reference",
            "build_s": round(build_s, 6),
            "peak_mem_bytes": dict_peak,
            "index_s": round(ref_index_s, 6),
            "check_s": round(ref_check_s, 6),
            "violations": len(reference_violations),
        }
    )
    del relation
    gc.collect()

    relation, build_s, columnar_peak = build(columnar=True)
    vectorized_violations, vec_index_s, vec_check_s = scan(relation, "vectorized")
    rows.append(
        {
            "backend": "columnar",
            "engine": "vectorized",
            "build_s": round(build_s, 6),
            "peak_mem_bytes": columnar_peak,
            "index_s": round(vec_index_s, 6),
            "check_s": round(vec_check_s, 6),
            "violations": len(vectorized_violations),
            "resident_column_bytes": relation.column_store.nbytes(),
        }
    )
    del relation
    gc.collect()

    summary = {
        "size": size,
        "n_blocks": n_blocks,
        "noise_rate": noise_rate,
        "seed": seed,
        "dict_peak_mem_bytes": dict_peak,
        "columnar_peak_mem_bytes": columnar_peak,
        "mem_ratio": round(columnar_peak / dict_peak, 4) if dict_peak else None,
        "reference_check_s": round(ref_check_s, 6),
        "vectorized_check_s": round(vec_check_s, 6),
        # The blocking-scan/check hot loop (re-run every repair round):
        "scan_speedup": round(ref_check_s / vec_check_s, 2)
        if vec_check_s
        else None,
        # One-off partition bulk build, for transparency:
        "reference_index_s": round(ref_index_s, 6),
        "vectorized_index_s": round(vec_index_s, 6),
        "index_speedup": round(ref_index_s / vec_index_s, 2)
        if vec_index_s
        else None,
        "end_to_end_speedup": round(
            (ref_index_s + ref_check_s) / (vec_index_s + vec_check_s), 2
        )
        if vec_index_s + vec_check_s
        else None,
        "violations": len(reference_violations),
        # Structural acceptance flags (never wall-clock):
        "violations_identical": reference_violations == vectorized_violations,
        "mem_improved": columnar_peak < dict_peak,
    }
    return {
        "workload": {
            "dataset": "partitioned",
            "size": size,
            "n_blocks": n_blocks,
            "noise_rate": noise_rate,
            "seed": seed,
        },
        "rows": rows,
        "summary": summary,
    }


def run_repair_engine_report(
    size: int = 20_000,
    n_blocks: int = 64,
    noise_rate: float = 0.04,
    seed: int = 11,
) -> Dict[str, Any]:
    """Vectorized vs reference repair engine (ISSUE 8 columnar kernels).

    One full traced ``CleaningSession.clean()`` of the PART testbed on
    the columnar backend, once per ``REPRO_REPAIR_ENGINE`` setting.
    Rows record the per-phase seconds straight from the session timings
    (``setup`` / ``crepair`` / ``erepair`` / ``hrepair``), the
    tracemalloc peak across the clean, and the fix count.  Asserted:
    the ordered fix log (every field), repaired state, per-cell cost
    total, clean verdict and phase scheduling traces are identical
    between the engines — the standing byte-identity invariant.
    Recorded, never asserted: seconds, speedups and memory.
    """
    import gc
    import tracemalloc

    from repro.relational import columns as _relcolumns

    def run(engine: str):
        gc.collect()
        with _relcolumns.using_backend(True), \
                _relcolumns.using_repair_engine(engine):
            ds = generate(
                "partitioned", size=size, n_blocks=n_blocks,
                noise_rate=noise_rate, seed=seed,
            )
            session = CleaningSession(
                cfds=ds.cfds, mds=ds.mds, master=ds.master,
                collect_traces=True,
            )
            tracemalloc.start()
            result = session.clean(ds.dirty)
            _current, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
        return {
            "fingerprint": _fingerprint(result.fix_log),
            "state": _state(result.repaired),
            "cost": result.cost,
            "clean": result.clean,
            "traces": dict(session.last_traces),
            "timings": dict(result.timings),
            "peak": peak,
        }

    rows: List[Dict[str, Any]] = []
    runs: Dict[str, Dict[str, Any]] = {}
    for engine in ("reference", "vectorized"):
        outcome = runs[engine] = run(engine)
        timings = outcome["timings"]
        rows.append(
            {
                "engine": engine,
                "setup_s": round(timings.get("setup", 0.0), 6),
                "crepair_s": round(timings.get("crepair", 0.0), 6),
                "erepair_s": round(timings.get("erepair", 0.0), 6),
                "hrepair_s": round(timings.get("hrepair", 0.0), 6),
                "total_s": round(sum(timings.values()), 6),
                "peak_mem_bytes": outcome["peak"],
                "fixes": len(outcome["fingerprint"]),
                "clean": outcome["clean"],
            }
        )

    reference, vectorized = runs["reference"], runs["vectorized"]
    identical = (
        reference["fingerprint"] == vectorized["fingerprint"]
        and reference["state"] == vectorized["state"]
        and reference["cost"] == vectorized["cost"]
        and reference["clean"] == vectorized["clean"]
        and reference["traces"] == vectorized["traces"]
    )

    def speedup(phase: str):
        ref = reference["timings"].get(phase, 0.0)
        vec = vectorized["timings"].get(phase, 0.0)
        return round(ref / vec, 2) if vec else None

    summary = {
        "size": size,
        "n_blocks": n_blocks,
        "noise_rate": noise_rate,
        "seed": seed,
        "fixes": len(reference["fingerprint"]),
        "reference_total_s": round(sum(reference["timings"].values()), 6),
        "vectorized_total_s": round(sum(vectorized["timings"].values()), 6),
        # Per-phase speedups (recorded, never asserted):
        "crepair_speedup": speedup("crepair"),
        "erepair_speedup": speedup("erepair"),
        "hrepair_speedup": speedup("hrepair"),
        "total_speedup": round(
            sum(reference["timings"].values())
            / sum(vectorized["timings"].values()),
            2,
        )
        if sum(vectorized["timings"].values())
        else None,
        "reference_peak_mem_bytes": reference["peak"],
        "vectorized_peak_mem_bytes": vectorized["peak"],
        # The structural acceptance flag (never wall-clock):
        "repair_identical": identical,
    }
    return {
        "workload": {
            "dataset": "partitioned",
            "size": size,
            "n_blocks": n_blocks,
            "noise_rate": noise_rate,
            "seed": seed,
            "backend": "columnar",
        },
        "rows": rows,
        "summary": summary,
    }


def run_match_engine_report(
    size: int = 500_000,
    queries: int = 24,
    seed: int = 7,
) -> Dict[str, Any]:
    """Similarity-join vs exhaustive-scan MD matching (ISSUE 9).

    A DBLP-style master of *size* ``(title, ee)`` rows is probed with
    *queries* lookups — typo'd master titles (a true match exists),
    exact master titles, and foreign strings (no match) — under the
    pure-similarity MD ``title ≈₂ title → ee ⇌ ee``.  The ``join``
    engine answers through the filtered inverted-index pipeline; the
    comparator is the reference engine's exhaustive full scan
    (``use_suffix_tree=False``), the only *exact* reference — top-``l``
    suffix-tree retrieval is lossy and cannot anchor an identity check.
    Asserted: per-probe match lists identical, and strictly fewer
    similarity verifications on the join side (the point of the filter
    chain).  Recorded, never asserted: seconds, speedups and memory.
    """
    import gc
    import tracemalloc

    from repro.constraints import MD
    from repro.datasets.generator import NamePool, derive_rng, typo
    from repro.indexing import MDBlockingIndex
    from repro.relational import Relation, Schema
    from repro.similarity import edit_within

    schema = Schema("PUB", ["title", "ee"])
    pool = NamePool(derive_rng(seed, "match-engine", "master"))
    master = Relation(schema)
    append = master.append_row_values
    started = time.perf_counter()
    titles: List[str] = []
    for i in range(size):
        title = f"{pool.word(2)} {pool.word(2)} {pool.word(3)}"
        titles.append(title)
        append([title, f"db/journals/x/{i}"], [1.0, 1.0])
    master_build_s = time.perf_counter() - started

    probe_rng = derive_rng(seed, "match-engine", "probes")
    probes_rel = Relation(schema)
    for i in range(queries):
        kind = i % 3
        if kind == 0:  # one random edit of a master title: a true match
            value = typo(probe_rng.choice(titles), probe_rng)
        elif kind == 1:  # verbatim master title
            value = probe_rng.choice(titles)
        else:  # foreign string, far from every master title
            value = f"zz{probe_rng.randrange(10**9):09d}qx{pool.word(4)}"
        probes_rel.append_row_values([value, "probe"], [1.0, 1.0])
    probes = [probes_rel.by_tid(tid) for tid in probes_rel.tids()]

    md = MD(
        schema, schema, [("title", "title", edit_within(2))], [("ee", "ee")]
    )

    def run(engine: str):
        gc.collect()
        tracemalloc.start()
        started = time.perf_counter()
        if engine == "join":
            index = MDBlockingIndex(md, master, engine="join")
        else:
            index = MDBlockingIndex(
                md, master, use_suffix_tree=False, engine="reference"
            )
        build_s = time.perf_counter() - started
        started = time.perf_counter()
        match_tids = [[s.tid for s in index.matches(p)] for p in probes]
        lookup_s = time.perf_counter() - started
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        stats: Dict[str, Any] = {
            "candidates": index.stats["candidates"],
            "verify_calls": index.verify_calls,
        }
        if index.join_index is not None:
            stats["join_stats"] = dict(index.join_index.stats)
            stats["profile_cache_hits"] = index.join_index.profiles.hits
        return match_tids, build_s, lookup_s, peak, stats

    rows: List[Dict[str, Any]] = []
    runs: Dict[str, Any] = {}
    for engine in ("reference_scan", "join"):
        match_tids, build_s, lookup_s, peak, stats = run(engine)
        runs[engine] = (match_tids, lookup_s, stats)
        rows.append(
            {
                "engine": engine,
                "build_s": round(build_s, 6),
                "lookup_s": round(lookup_s, 6),
                "peak_mem_bytes": peak,
                "candidates": stats["candidates"],
                "verify_calls": stats["verify_calls"],
                "matched_probes": sum(1 for m in match_tids if m),
                **(
                    {"join_stats": stats["join_stats"],
                     "profile_cache_hits": stats["profile_cache_hits"]}
                    if "join_stats" in stats
                    else {}
                ),
            }
        )

    scan_tids, scan_lookup_s, scan_stats = runs["reference_scan"]
    join_tids, join_lookup_s, join_stats = runs["join"]
    summary = {
        "size": size,
        "queries": queries,
        "seed": seed,
        "master_build_s": round(master_build_s, 6),
        "reference_lookup_s": round(scan_lookup_s, 6),
        "join_lookup_s": round(join_lookup_s, 6),
        "lookup_speedup": round(scan_lookup_s / join_lookup_s, 2)
        if join_lookup_s
        else None,
        "reference_verify_calls": scan_stats["verify_calls"],
        "join_verify_calls": join_stats["verify_calls"],
        "verify_reduction": round(
            scan_stats["verify_calls"] / join_stats["verify_calls"], 1
        )
        if join_stats["verify_calls"]
        else None,
        "matched_probes": sum(1 for m in scan_tids if m),
        # Structural acceptance flags (never wall-clock):
        "matches_identical": join_tids == scan_tids,
        "fewer_verify_calls": join_stats["verify_calls"]
        < scan_stats["verify_calls"],
    }
    return {
        "workload": {
            "dataset": "dblp-style",
            "size": size,
            "queries": queries,
            "seed": seed,
        },
        "rows": rows,
        "summary": summary,
    }


def run_faults_report(
    size: int = 2000,
    n_blocks: int = 16,
    n_workers: int = 2,
    n_shards: int = 8,
    batches: int = 3,
    edits_per_batch: int = 6,
    noise_rate: float = 0.04,
    seed: int = 11,
) -> Dict[str, Any]:
    """Fault-injected sharded runs vs a fault-free reference (ISSUE 6).

    Each named schedule drives the same clean + micro-batch workload
    through the supervision layer; the assertion is equivalence only —
    recovered observables must be byte-identical to the reference —
    while retries/respawns/fallbacks and the recovery overhead are
    recorded, never asserted.
    """
    import shutil
    import tempfile

    from repro.pipeline import FaultSpec, SupervisionPolicy
    from repro.pipeline.faults import FaultInjector, injected

    ds = generate(
        "partitioned", size=size, n_blocks=n_blocks,
        noise_rate=noise_rate, seed=seed,
    )
    config = UniCleanConfig(eta=1.0)
    rows: List[Dict[str, Any]] = []

    catalog_attrs = [a for a in ("cat", "score") if a in ds.schema]

    def batch_plan(base, rng):
        tids = list(base.tids())
        out = []
        for _ in range(batches):
            changeset = Changeset()
            for _ in range(edits_per_batch):
                attr = rng.choice(catalog_attrs)
                donor = base.by_tid(rng.choice(tids))
                changeset.edit(rng.choice(tids), attr, donor[attr])
            out.append(changeset)
        return out

    def run(session, injector=None, checkpoint_root=None):
        started = time.perf_counter()
        try:
            if injector is None:
                session.clean(ds.dirty)
                plan = batch_plan(session.base, random.Random(seed))
                for changeset in plan:
                    session.apply(Changeset(list(changeset.ops)))
            else:
                with injected(injector):
                    session.clean(ds.dirty)
                    plan = batch_plan(session.base, random.Random(seed))
                    for changeset in plan:
                        session.apply(Changeset(list(changeset.ops)))
            if checkpoint_root is not None:
                # Drop the live session and come back from its newest
                # checkpoint — the recovered twin must answer the same.
                session.close()
                session = ShardedCleaningSession.restore_latest(
                    checkpoint_root, n_workers=n_workers
                )
            elapsed = time.perf_counter() - started
            state = (
                _full_state(session.working),
                _fingerprint(session.fix_log.fixes()),
                session._last_clean,
            )
            session._sync_io_stats()
            stats = {
                key: session.stats[key]
                for key in (
                    "dispatch_retries", "dispatch_timeouts",
                    "worker_respawns", "serial_fallbacks",
                    "checkpoints_written",
                )
            }
            return state, stats, elapsed
        finally:
            session.close()

    def make(**kwargs):
        kwargs.setdefault("n_workers", n_workers)
        kwargs.setdefault("n_shards", n_shards)
        return ShardedCleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config,
            **kwargs
        )

    policy = SupervisionPolicy(
        timeout=120.0, max_retries=2, backoff_base=0.01, backoff_max=0.1
    )
    reference_state, _stats, reference_s = run(make(supervision=policy))

    schedules = [
        ("worker_crash",
         [FaultSpec(point="dispatch", kind="crash", method="clean_shard")],
         policy, None),
        ("torn_response",
         [FaultSpec(point="dispatch", kind="torn_response",
                    method="apply_shard")],
         policy, None),
        ("hang_timeout",
         [FaultSpec(point="dispatch", kind="hang", method="apply_shard",
                    seconds=30.0)],
         SupervisionPolicy(timeout=1.0, max_retries=2,
                           backoff_base=0.01, backoff_max=0.1), None),
        ("transient_error",
         [FaultSpec(point="dispatch", kind="error", method="apply_shard",
                    times=2)],
         policy, None),
        ("persistent_crash_escalation",
         [FaultSpec(point="dispatch", kind="crash", times=10**6)],
         SupervisionPolicy(timeout=120.0, max_retries=1,
                           backoff_base=0.01, backoff_max=0.1), None),
    ]

    all_identical = True
    for name, specs, schedule_policy, _unused in schedules:
        injector = FaultInjector(specs)
        state, stats, elapsed = run(
            make(supervision=schedule_policy), injector
        )
        identical = state == reference_state
        all_identical &= identical
        rows.append(
            {
                "schedule": name,
                "seconds": round(elapsed, 6),
                "overhead": round(elapsed / reference_s, 2)
                if reference_s else None,
                "faults_fired": len(injector.log),
                "state_identical": identical,
                **stats,
            }
        )

    checkpoint_root = tempfile.mkdtemp(prefix="ucfaults-bench-")
    try:
        state, stats, elapsed = run(
            make(
                supervision=policy,
                checkpoint_dir=checkpoint_root,
                checkpoint_every=1,
                checkpoint_retain=2,
            ),
            checkpoint_root=checkpoint_root,
        )
        identical = state == reference_state
        all_identical &= identical
        rows.append(
            {
                "schedule": "checkpoint_restore",
                "seconds": round(elapsed, 6),
                "overhead": round(elapsed / reference_s, 2)
                if reference_s else None,
                "faults_fired": 0,
                "state_identical": identical,
                **stats,
            }
        )
    finally:
        shutil.rmtree(checkpoint_root, ignore_errors=True)

    summary = {
        "size": size,
        "n_blocks": n_blocks,
        "n_workers": n_workers,
        "n_shards": n_shards,
        "cpu_count": os.cpu_count(),
        "batches": batches,
        "edits_per_batch": edits_per_batch,
        "reference_s": round(reference_s, 6),
        "schedules": len(rows),
        # The only acceptance flag — equivalence, never wall-clock:
        "all_state_identical": all_identical,
    }
    return {
        "workload": {
            "dataset": "partitioned",
            "size": size,
            "n_blocks": n_blocks,
            "noise_rate": noise_rate,
            "seed": seed,
        },
        "rows": rows,
        "summary": summary,
    }


def run_service_report(
    size: int = 2000,
    n_blocks: int = 16,
    n_workers: int = 2,
    n_shards: int = 8,
    writers: int = 4,
    writes_per_writer: int = 12,
    max_batch: int = 8,
    max_linger: float = 0.02,
    noise_rate: float = 0.04,
    seed: int = 23,
) -> Dict[str, Any]:
    """The online cleaning service under concurrent writers (ISSUE 10).

    Closed-loop: *writers* threads each submit ``writes_per_writer``
    changesets through :class:`CleaningService`, waiting for every
    acknowledgment before the next write.  Latency (p50/p99 of
    submit→ack) and throughput are **recorded, never asserted** — the
    only acceptance flags are equivalence: the served final state must
    be byte-identical to a serial replay of the acknowledged changesets
    in acknowledgment order on a fresh session, both for the plain
    closed-loop run and for a run poisoned mid-stream by an injected
    worker fault (recovered via ``restore_latest`` + ledger replay).
    """
    import shutil
    import tempfile
    import threading

    from repro.pipeline import FaultSpec, SupervisionPolicy
    from repro.pipeline.faults import FaultInjector, injected
    from repro.pipeline.service import CleaningService, FlushPolicy

    ds = generate(
        "partitioned", size=size, n_blocks=n_blocks,
        noise_rate=noise_rate, seed=seed,
    )
    config = UniCleanConfig(eta=1.0)
    catalog_attrs = [a for a in ("cat", "score") if a in ds.schema]
    tids = sorted(ds.dirty.tids())

    def writer_plan(writer: int):
        rng = random.Random(seed * 1000 + writer)
        out = []
        for _ in range(writes_per_writer):
            changeset = Changeset()
            attr = rng.choice(catalog_attrs)
            donor = ds.dirty.by_tid(rng.choice(tids))
            changeset.edit(rng.choice(tids), attr, donor[attr])
            out.append(changeset)
        return out

    def make(supervision, **kwargs):
        session = ShardedCleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config,
            n_workers=n_workers, n_shards=n_shards,
            supervision=supervision, **kwargs
        )
        session.clean(ds.dirty)
        return session

    def session_state(session):
        """(full working state, order-free fix multiset).

        The state is the asserted linearization witness.  The fix
        *multiset* rides along as a recorded column only: the merged
        log's entry *order* is a per-trajectory artifact (48 serial
        applies, 12 coalesced batches and one from-scratch clean of the
        edited base all converge to the same state and fix multiset but
        interleave the tail of the log differently), so order is not
        comparable across trajectories and is never asserted.
        """
        return (
            _full_state(session.working),
            sorted(_fingerprint(session.fix_log.fixes())),
        )

    def replay_state(changesets):
        """Serial replay of *changesets* on a fresh session — the
        linearization witness the service must match byte-for-byte."""
        session = ShardedCleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config,
            n_workers=1, n_shards=n_shards,
        )
        try:
            session.clean(ds.dirty)
            for changeset in changesets:
                session.apply(Changeset(list(changeset.ops)))
            return session_state(session)
        finally:
            session.close()

    def drive(service, tenant):
        """Closed-loop writers; returns (tickets, elapsed seconds)."""
        all_tickets: List[Any] = []
        lock = threading.Lock()

        def writer(index: int):
            for changeset in writer_plan(index):
                ticket = service.submit(
                    tenant, Changeset(list(changeset.ops))
                )
                ticket.result(timeout=600.0)  # closed loop: wait the ack
                with lock:
                    all_tickets.append(ticket)

        threads = [
            threading.Thread(target=writer, args=(w,))
            for w in range(writers)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return all_tickets, time.perf_counter() - started

    def percentile(values, q):
        if not values:
            return None
        ordered = sorted(values)
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return ordered[index]

    def run(service, tenant, injector=None):
        if injector is None:
            tickets, elapsed = drive(service, tenant)
        else:
            with injected(injector):
                tickets, elapsed = drive(service, tenant)
        ordered = sorted(tickets, key=lambda t: t.ack_seq)
        latencies = [t.latency for t in tickets]
        state = session_state(service.registry.get(tenant).session)
        stats = service.stats(tenant)
        service.close()
        replayed_state = replay_state([t.changeset for t in ordered])
        identical = state[0] == replayed_state[0]
        fix_multiset = state[1] == replayed_state[1]
        return {
            "writers": writers,
            "writes": len(tickets),
            "seconds": round(elapsed, 6),
            "throughput_wps": round(len(tickets) / elapsed, 2)
            if elapsed else None,
            "latency_p50_ms": round(percentile(latencies, 0.50) * 1e3, 3),
            "latency_p99_ms": round(percentile(latencies, 0.99) * 1e3, 3),
            "batches": stats["batches"],
            "coalesce_ratio": round(stats["acked"] / stats["batches"], 2)
            if stats["batches"] else None,
            "recoveries": stats["recoveries"],
            "replayed": stats["replayed"],
            "checkpoints_written": stats["checkpoints_written"],
            "state_identical": identical,
            "fix_multiset_identical": fix_multiset,
        }

    policy = SupervisionPolicy(
        timeout=120.0, max_retries=2, backoff_base=0.01, backoff_max=0.1
    )
    flush = FlushPolicy(max_batch=max_batch, max_linger=max_linger)
    rows: List[Dict[str, Any]] = []

    service = CleaningService(flush_policy=flush)
    service.register("bench", make(policy))
    rows.append({"scenario": "closed_loop", **run(service, "bench")})

    # Mid-stream poison drill: retries disabled so the injected fault
    # escapes supervision and poisons the session; the service must come
    # back from its newest checkpoint, replay the acknowledged ledger
    # tail, and converge to the same serial-replay state.
    checkpoint_root = tempfile.mkdtemp(prefix="ucservice-bench-")
    try:
        poison = SupervisionPolicy(
            timeout=120.0, max_retries=0, serial_fallback=False
        )
        service = CleaningService(flush_policy=flush)
        service.register(
            "bench", make(poison),
            checkpoint_dir=checkpoint_root, checkpoint_every=2,
            max_recoveries=2,
        )
        injector = FaultInjector(
            [FaultSpec(point="dispatch", kind="error",
                       method="apply_shard", after=2, times=1)]
        )
        row = run(service, "bench", injector)
        rows.append({
            "scenario": "poison_recovery",
            "faults_fired": len(injector.log),
            **row,
        })
    finally:
        shutil.rmtree(checkpoint_root, ignore_errors=True)

    all_identical = all(row["state_identical"] for row in rows)
    recovery_row = rows[-1]
    summary = {
        "size": size,
        "n_blocks": n_blocks,
        "n_workers": n_workers,
        "n_shards": n_shards,
        "cpu_count": os.cpu_count(),
        "writers": writers,
        "writes_per_writer": writes_per_writer,
        "max_batch": max_batch,
        "max_linger_s": max_linger,
        "throughput_wps": rows[0]["throughput_wps"],
        "latency_p50_ms": rows[0]["latency_p50_ms"],
        "latency_p99_ms": rows[0]["latency_p99_ms"],
        # The acceptance flags — equivalence, never wall-clock:
        "all_state_identical": all_identical,
        "recovery_converged": bool(
            recovery_row["recoveries"] >= 1
            and recovery_row["state_identical"]
        ),
    }
    return {
        "workload": {
            "dataset": "partitioned",
            "size": size,
            "n_blocks": n_blocks,
            "noise_rate": noise_rate,
            "seed": seed,
        },
        "rows": rows,
        "summary": summary,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument("--dataset", default="hosp")
    parser.add_argument("--noise-rate", type=float, default=0.06)
    parser.add_argument("--batches", type=int, default=5,
                        help="micro-batches for the incremental scenario")
    parser.add_argument("--edits-per-batch", type=int, default=10)
    parser.add_argument("--skip-incremental", action="store_true")
    parser.add_argument("--sharded-size", type=int, default=4000,
                        help="PART testbed rows for the sharded scenario")
    parser.add_argument("--sharded-blocks", type=int, default=16)
    parser.add_argument("--sharded-workers", type=int, default=2)
    parser.add_argument("--skip-sharded", action="store_true")
    parser.add_argument("--replan-size", type=int, default=4000,
                        help="PART testbed rows for the replan scenario")
    parser.add_argument("--replan-blocks", type=int, default=16)
    parser.add_argument("--replan-workers", type=int, default=2)
    parser.add_argument("--replan-shards", type=int, default=8)
    parser.add_argument("--replan-batches", type=int, default=5)
    parser.add_argument("--replan-inserts", type=int, default=1,
                        help="inserts per replan batch (each forces a re-plan)")
    parser.add_argument("--replan-edits", type=int, default=4)
    parser.add_argument("--skip-replan", action="store_true")
    parser.add_argument("--snapshot-size", type=int, default=4000,
                        help="PART testbed rows for the snapshot scenario")
    parser.add_argument("--snapshot-blocks", type=int, default=16)
    parser.add_argument("--snapshot-workers", type=int, default=2)
    parser.add_argument("--snapshot-shards", type=int, default=8)
    parser.add_argument("--snapshot-batches", type=int, default=4)
    parser.add_argument("--snapshot-cut", type=int, default=2,
                        help="save/restore after this many batches")
    parser.add_argument("--skip-snapshot", action="store_true")
    parser.add_argument("--columnar-size", type=int, default=1_000_000,
                        help="rows for the columnar blocking-scan scenario")
    parser.add_argument("--columnar-blocks", type=int, default=1024)
    parser.add_argument("--skip-columnar", action="store_true")
    parser.add_argument("--repair-size", type=int, default=20_000,
                        help="PART testbed rows for the repair-engine scenario")
    parser.add_argument("--repair-blocks", type=int, default=64)
    parser.add_argument("--skip-repair-engine", action="store_true")
    parser.add_argument("--match-size", type=int, default=500_000,
                        help="DBLP-style master rows for the match-engine "
                             "scenario")
    parser.add_argument("--match-queries", type=int, default=24)
    parser.add_argument("--skip-match-engine", action="store_true")
    parser.add_argument("--faults-size", type=int, default=2000,
                        help="PART testbed rows for the faults scenario")
    parser.add_argument("--faults-blocks", type=int, default=16)
    parser.add_argument("--faults-workers", type=int, default=2)
    parser.add_argument("--faults-shards", type=int, default=8)
    parser.add_argument("--faults-batches", type=int, default=3)
    parser.add_argument("--skip-faults", action="store_true")
    parser.add_argument("--service-size", type=int, default=2000,
                        help="PART testbed rows for the service scenario")
    parser.add_argument("--service-blocks", type=int, default=16)
    parser.add_argument("--service-workers", type=int, default=2,
                        help="worker processes of the served session")
    parser.add_argument("--service-shards", type=int, default=8)
    parser.add_argument("--service-writers", type=int, default=4,
                        help="concurrent closed-loop writer threads")
    parser.add_argument("--service-writes", type=int, default=12,
                        help="writes per writer thread")
    parser.add_argument("--service-batch", type=int, default=8,
                        help="flush policy: max coalesced batch size")
    parser.add_argument("--service-linger", type=float, default=0.02,
                        help="flush policy: max linger seconds")
    parser.add_argument("--skip-service", action="store_true")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_repair.json",
    )
    args = parser.parse_args(argv)

    report = run_report(args.sizes, dataset=args.dataset, noise_rate=args.noise_rate)
    ok = True
    for entry in report["summary"]:
        print(
            f"  size={entry['size']}: indexed={entry['indexed_s']:.2f}s "
            f"legacy={entry['legacy_s']:.2f}s speedup={entry['speedup']}x "
            f"identical_logs={entry['fix_logs_identical']}"
        )
        ok &= entry["fix_logs_identical"]

    if not args.skip_incremental:
        incremental = run_incremental_report(
            max(args.sizes),
            batches=args.batches,
            edits_per_batch=args.edits_per_batch,
            dataset=args.dataset,
            noise_rate=args.noise_rate,
        )
        report["incremental"] = incremental
        for entry in incremental["summary"]:
            print(
                f"  incremental[{entry['scenario']}] size={entry['size']}: "
                f"apply={entry['apply_total_s']:.2f}s "
                f"full={entry['full_total_s']:.2f}s "
                f"speedup={entry['speedup']}x "
                f"scoped={entry['scoped_batches']}/{entry['batches']} "
                f"state_identical={entry['all_state_identical']}"
            )
            ok &= entry["all_state_identical"]

    if not args.skip_sharded:
        sharded = run_sharded_report(
            size=args.sharded_size,
            n_blocks=args.sharded_blocks,
            n_workers=args.sharded_workers,
        )
        report["sharded"] = sharded
        entry = sharded["summary"]
        print(
            f"  sharded size={entry['size']} shards={entry['n_shards']} "
            f"workers={entry['n_workers']}: "
            f"unsharded={entry['unsharded_clean_s']:.2f}s "
            f"sharded={entry['sharded_clean_s']:.2f}s "
            f"speedup={entry['clean_speedup']}x (cpus={entry['cpu_count']}) "
            f"scoped_applies={entry['scoped_applies']} "
            f"state_identical={entry['all_state_identical']}"
        )
        ok &= entry["all_state_identical"]

    if not args.skip_replan:
        replan = run_replan_report(
            size=args.replan_size,
            n_blocks=args.replan_blocks,
            n_workers=args.replan_workers,
            n_shards=args.replan_shards,
            batches=args.replan_batches,
            inserts_per_batch=args.replan_inserts,
            edits_per_batch=args.replan_edits,
        )
        report["replan"] = replan
        entry = replan["summary"]
        print(
            f"  replan size={entry['size']} shards={entry['n_shards']} "
            f"batches={entry['batches']}: "
            f"recleaned={entry['shards_recleaned_total']} "
            f"reused={entry['shards_reused_total']} "
            f"payload_ratio={entry['payload_ratio']} "
            f"state_identical={entry['all_state_identical']}"
        )
        ok &= entry["all_state_identical"]
        ok &= entry["reuse_effective"]
        ok &= entry["payload_bound_met"]
        ok &= entry["encode_identical"]

    if not args.skip_snapshot:
        snap = run_snapshot_report(
            size=args.snapshot_size,
            n_blocks=args.snapshot_blocks,
            n_workers=args.snapshot_workers,
            n_shards=args.snapshot_shards,
            batches=args.snapshot_batches,
            cut=args.snapshot_cut,
        )
        report["snapshot"] = snap
        entry = snap["summary"]
        print(
            f"  snapshot size={entry['size']} shards={entry['n_shards']} "
            f"cut={entry['cut']}/{entry['batches']}: "
            f"bytes={entry['snapshot_bytes']} "
            f"save={entry['save_s']:.2f}s restore={entry['restore_s']:.2f}s "
            f"restored_reuse={entry['restored_reuse_effective']} "
            f"state_identical={entry['all_state_identical']}"
        )
        ok &= entry["all_state_identical"]
        ok &= entry["reuse_counters_match"]
        ok &= entry["restored_reuse_effective"]

    if not args.skip_columnar:
        columnar = run_columnar_report(
            size=args.columnar_size,
            n_blocks=args.columnar_blocks,
        )
        report["columnar"] = columnar
        entry = columnar["summary"]
        print(
            f"  columnar size={entry['size']}: "
            f"check reference={entry['reference_check_s']:.2f}s "
            f"vectorized={entry['vectorized_check_s']:.2f}s "
            f"speedup={entry['scan_speedup']}x "
            f"(index build {entry['reference_index_s']:.2f}s/"
            f"{entry['vectorized_index_s']:.2f}s, "
            f"e2e x{entry['end_to_end_speedup']}) "
            f"mem={entry['columnar_peak_mem_bytes']}/"
            f"{entry['dict_peak_mem_bytes']}B "
            f"(x{entry['mem_ratio']}) "
            f"violations_identical={entry['violations_identical']}"
        )
        ok &= entry["violations_identical"]
        ok &= entry["mem_improved"]

    if not args.skip_repair_engine:
        repair = run_repair_engine_report(
            size=args.repair_size,
            n_blocks=args.repair_blocks,
        )
        report["repair_engine"] = repair
        entry = repair["summary"]
        print(
            f"  repair-engine size={entry['size']} fixes={entry['fixes']}: "
            f"reference={entry['reference_total_s']:.2f}s "
            f"vectorized={entry['vectorized_total_s']:.2f}s "
            f"speedup={entry['total_speedup']}x "
            f"(c x{entry['crepair_speedup']} e x{entry['erepair_speedup']} "
            f"h x{entry['hrepair_speedup']}) "
            f"mem={entry['vectorized_peak_mem_bytes']}/"
            f"{entry['reference_peak_mem_bytes']}B "
            f"repair_identical={entry['repair_identical']}"
        )
        ok &= entry["repair_identical"]

    if not args.skip_match_engine:
        match = run_match_engine_report(
            size=args.match_size,
            queries=args.match_queries,
        )
        report["match_engine"] = match
        entry = match["summary"]
        print(
            f"  match-engine size={entry['size']} queries={entry['queries']}: "
            f"scan={entry['reference_lookup_s']:.2f}s "
            f"join={entry['join_lookup_s']:.2f}s "
            f"speedup={entry['lookup_speedup']}x "
            f"verify_calls={entry['join_verify_calls']}/"
            f"{entry['reference_verify_calls']} "
            f"(x{entry['verify_reduction']} fewer) "
            f"matches_identical={entry['matches_identical']}"
        )
        ok &= entry["matches_identical"]
        ok &= entry["fewer_verify_calls"]

    if not args.skip_faults:
        faults = run_faults_report(
            size=args.faults_size,
            n_blocks=args.faults_blocks,
            n_workers=args.faults_workers,
            n_shards=args.faults_shards,
            batches=args.faults_batches,
        )
        report["faults"] = faults
        entry = faults["summary"]
        for row in faults["rows"]:
            print(
                f"  faults[{row['schedule']}]: {row['seconds']:.2f}s "
                f"(x{row['overhead']}) retries={row['dispatch_retries']} "
                f"respawns={row['worker_respawns']} "
                f"fallbacks={row['serial_fallbacks']} "
                f"state_identical={row['state_identical']}"
            )
        ok &= entry["all_state_identical"]

    if not args.skip_service:
        service = run_service_report(
            size=args.service_size,
            n_blocks=args.service_blocks,
            n_workers=args.service_workers,
            n_shards=args.service_shards,
            writers=args.service_writers,
            writes_per_writer=args.service_writes,
            max_batch=args.service_batch,
            max_linger=args.service_linger,
        )
        report["service"] = service
        for row in service["rows"]:
            print(
                f"  service[{row['scenario']}]: "
                f"{row['writes']} writes x{row['writers']} writers "
                f"in {row['seconds']:.2f}s "
                f"({row['throughput_wps']} w/s, "
                f"p50={row['latency_p50_ms']}ms "
                f"p99={row['latency_p99_ms']}ms, "
                f"{row['batches']} batches, "
                f"recoveries={row['recoveries']}) "
                f"state_identical={row['state_identical']}"
            )
        entry = service["summary"]
        ok &= entry["all_state_identical"]
        ok &= entry["recovery_converged"]

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not ok:
        print(
            "ERROR: a structural assertion failed (engine/state divergence, "
            "no shard reuse across re-plans, columnar payloads above "
            "50% of the PR 3 bytes, a non-identical columnar encode or "
            "violation list, a columnar representation that did not peak "
            "below the per-tuple one, a repair-engine run that was not "
            "byte-identical to the reference path, a match-engine run whose "
            "match lists diverged from the exhaustive scan or that verified "
            "no fewer pairs, a snapshot restore that diverged "
            "or re-cleaned restored shards, a fault-injected run that "
            "did not recover byte-identically, or a service run whose "
            "final state diverged from the serial replay of its "
            "acknowledged changesets in acknowledgment order); timings "
            "are never asserted on",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
