"""Repair-pipeline performance report: the perf trajectory across PRs.

Two workloads, both written to ``BENCH_repair.json``:

1. **Batch** (Exp-5 scalability, HOSP): the full pipeline at three sizes
   with the indexed rule engine and with the legacy full-rescan baseline
   (``use_violation_index=False``) — rows ``{size, phase, seconds,
   fixes, engine}`` plus per-size speedups.  The script asserts that
   both engines produce identical fix logs (the determinism guarantee of
   the violation index).
2. **Incremental** (the ``CleaningSession`` delta path): one initial
   ``clean()`` at the largest size, then N micro-batches of k cell
   edits applied via ``session.apply()``, each compared against a cold
   from-scratch ``UniClean.clean()`` of the edited base — rows
   ``{batch, scenario, apply_s, full_s, speedup, mode, affected,
   state_identical}``.  Two edit scenarios run: ``catalog`` (corrections
   to pure target attributes — the provably-local scoped replay) and
   ``mixed`` (uniformly random attributes — mostly the warm full-replay
   fallback).  The script asserts **state equivalence** for every batch;
   timing numbers are informational only, so CI stays robust to noisy
   runners.
3. **Sharded** (the ``ShardedCleaningSession`` partition-parallel path,
   PART testbed): one unsharded ``clean()`` and one process-pool
   sharded ``clean()`` over the same block-partitioned dataset,
   followed by catalog-style micro-batches applied to both.  The script
   asserts that the repaired relation, the per-cell cost total, the
   satisfaction verdict **and the full ordered fix log** are identical;
   timings (and the parallel speedup) are informational only.  The
   speedup column is only meaningful when the machine actually has
   ``n_workers`` cores — the summary records ``cpu_count`` so a 0.x
   "speedup" on a 1-core CI runner reads as what it is (process
   overhead), not a regression.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf_report.py
    PYTHONPATH=src python benchmarks/perf_report.py --sizes 240 480 960
    PYTHONPATH=src python benchmarks/perf_report.py --sharded-size 100000 \
        --sharded-workers 8 --sharded-blocks 64
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path
from typing import Any, Dict, List

from repro.core import UniClean, UniCleanConfig
from repro.evaluation import generate, run_uniclean
from repro.pipeline import Changeset, CleaningSession, ShardedCleaningSession

DEFAULT_SIZES = (240, 480, 960)
PHASES = ("crepair", "erepair", "hrepair")
#: HOSP attributes that are pure rule targets with stable group keys —
#: catalog-style corrections that the scoped replay covers.
CATALOG_ATTRS = ("measure_name", "condition")


def _fingerprint(log) -> List[tuple]:
    return [
        (f.kind.value, f.rule_name, f.tid, f.attr, repr(f.old_value),
         repr(f.new_value), repr(f.source))
        for f in log
    ]


def _state(relation) -> Dict[int, tuple]:
    names = relation.schema.names
    return {t.tid: tuple(repr(t[a]) for a in names) for t in relation}


def run_report(
    sizes=DEFAULT_SIZES,
    dataset: str = "hosp",
    noise_rate: float = 0.06,
    seed: int = 7,
) -> Dict[str, Any]:
    """Run the workload at each size with both engines; return the report."""
    rows: List[Dict[str, Any]] = []
    summary: List[Dict[str, Any]] = []
    for size in sizes:
        ds = generate(
            dataset, size=size, master_size=max(size // 2, 1),
            noise_rate=noise_rate, seed=seed,
        )
        results = {}
        for engine, flag in (("indexed", True), ("legacy", False)):
            result = run_uniclean(
                ds, UniCleanConfig(eta=1.0, use_violation_index=flag)
            )
            results[engine] = result
            phase_fixes = {
                "crepair": result.crepair_result.deterministic_fixes,
                "erepair": result.erepair_result.reliable_fixes,
                "hrepair": result.hrepair_result.possible_fixes,
            }
            for phase in PHASES:
                rows.append(
                    {
                        "size": size,
                        "phase": phase,
                        "seconds": round(result.timings.get(phase, 0.0), 6),
                        "fixes": phase_fixes[phase],
                        "engine": engine,
                    }
                )
        identical = _fingerprint(results["indexed"].fix_log) == _fingerprint(
            results["legacy"].fix_log
        )
        t_indexed = results["indexed"].total_time
        t_legacy = results["legacy"].total_time
        summary.append(
            {
                "size": size,
                "indexed_s": round(t_indexed, 6),
                "legacy_s": round(t_legacy, 6),
                "speedup": round(t_legacy / t_indexed, 2) if t_indexed > 0 else None,
                "fix_logs_identical": identical,
                "clean": results["indexed"].clean,
            }
        )
    return {
        "workload": {"dataset": dataset, "noise_rate": noise_rate, "seed": seed},
        "rows": rows,
        "summary": summary,
    }


def run_incremental_report(
    size: int,
    batches: int = 5,
    edits_per_batch: int = 10,
    dataset: str = "hosp",
    noise_rate: float = 0.06,
    seed: int = 7,
) -> Dict[str, Any]:
    """Clean once, then apply N micro-batches of k edits incrementally.

    Each batch is verified for state equivalence against a cold
    from-scratch clean of the edited base.
    """
    ds = generate(
        dataset, size=size, master_size=max(size // 2, 1),
        noise_rate=noise_rate, seed=seed,
    )
    config = UniCleanConfig(eta=1.0)
    rng = random.Random(seed)
    rows: List[Dict[str, Any]] = []
    scenarios = {
        "catalog": [a for a in CATALOG_ATTRS if a in ds.schema],
        "mixed": list(ds.schema.names),
    }
    summary: List[Dict[str, Any]] = []
    for scenario, attr_pool in scenarios.items():
        if not attr_pool:
            continue
        session = CleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config
        )
        started = time.perf_counter()
        initial = session.clean(ds.dirty)
        clean_s = time.perf_counter() - started
        tids = list(session.base.tids())
        apply_total = full_total = 0.0
        all_identical = True
        scoped_batches = 0
        for batch in range(batches):
            changeset = Changeset()
            for _ in range(edits_per_batch):
                attr = rng.choice(attr_pool)
                donor = session.base.by_tid(rng.choice(tids))
                changeset.edit(rng.choice(tids), attr, donor[attr])
            started = time.perf_counter()
            out = session.apply(changeset)
            apply_s = time.perf_counter() - started
            started = time.perf_counter()
            reference = UniClean(
                cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config
            ).clean(session.base)
            full_s = time.perf_counter() - started
            identical = _state(out.repaired) == _state(reference.repaired)
            all_identical &= identical
            scoped_batches += 0 if out.full_reclean else 1
            apply_total += apply_s
            full_total += full_s
            rows.append(
                {
                    "scenario": scenario,
                    "batch": batch,
                    "apply_s": round(apply_s, 6),
                    "full_s": round(full_s, 6),
                    "speedup": round(full_s / apply_s, 2) if apply_s > 0 else None,
                    "mode": "full_reclean" if out.full_reclean else "scoped",
                    "affected": out.affected,
                    "affected_cells": out.affected_cells,
                    "state_identical": identical,
                    "clean": out.clean,
                }
            )
        summary.append(
            {
                "scenario": scenario,
                "size": size,
                "batches": batches,
                "edits_per_batch": edits_per_batch,
                "initial_clean_s": round(clean_s, 6),
                "initial_clean": initial.clean,
                "apply_total_s": round(apply_total, 6),
                "full_total_s": round(full_total, 6),
                "speedup": round(full_total / apply_total, 2) if apply_total else None,
                "scoped_batches": scoped_batches,
                "all_state_identical": all_identical,
            }
        )
    return {
        "workload": {
            "dataset": dataset,
            "size": size,
            "noise_rate": noise_rate,
            "seed": seed,
        },
        "rows": rows,
        "summary": summary,
    }


def _full_state(relation) -> Dict[int, tuple]:
    names = relation.schema.names
    return {
        t.tid: tuple((repr(t[a]), t.conf(a)) for a in names) for t in relation
    }


def run_sharded_report(
    size: int = 4000,
    n_blocks: int = 16,
    n_workers: int = 2,
    batches: int = 3,
    edits_per_batch: int = 8,
    noise_rate: float = 0.04,
    seed: int = 11,
) -> Dict[str, Any]:
    """Partition-parallel vs unsharded cleaning on the PART testbed.

    Asserts byte-identical observable state (relation, costs, verdict,
    ordered fix log) for the initial clean and every micro-batch; the
    recorded speedups are informational only.
    """
    ds = generate(
        "partitioned", size=size, n_blocks=n_blocks,
        noise_rate=noise_rate, seed=seed,
    )
    config = UniCleanConfig(eta=1.0)
    rng = random.Random(seed)
    rows: List[Dict[str, Any]] = []

    reference = CleaningSession(
        cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config
    )
    started = time.perf_counter()
    reference_clean = reference.clean(ds.dirty)
    unsharded_s = time.perf_counter() - started

    sharded = ShardedCleaningSession(
        cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config,
        n_workers=n_workers, n_shards=n_workers,
    )
    try:
        started = time.perf_counter()
        sharded_clean = sharded.clean(ds.dirty)
        sharded_s = time.perf_counter() - started

        identical = (
            _full_state(reference_clean.repaired)
            == _full_state(sharded_clean.repaired)
            and _fingerprint(reference_clean.fix_log)
            == _fingerprint(sharded_clean.fix_log)
            and abs(reference_clean.cost - sharded_clean.cost) < 1e-9
            and reference_clean.clean == sharded_clean.clean
        )
        all_identical = identical
        rows.append(
            {
                "stage": "clean",
                "unsharded_s": round(unsharded_s, 6),
                "sharded_s": round(sharded_s, 6),
                "speedup": round(unsharded_s / sharded_s, 2) if sharded_s else None,
                "state_identical": identical,
            }
        )

        catalog_attrs = [a for a in ("cat", "score") if a in ds.schema]
        tids = list(reference.base.tids())
        for batch in range(batches):
            changeset = Changeset()
            for _ in range(edits_per_batch):
                attr = rng.choice(catalog_attrs)
                donor = reference.base.by_tid(rng.choice(tids))
                changeset.edit(rng.choice(tids), attr, donor[attr])
            started = time.perf_counter()
            reference_out = reference.apply(Changeset(list(changeset.ops)))
            unsharded_apply_s = time.perf_counter() - started
            started = time.perf_counter()
            sharded_out = sharded.apply(Changeset(list(changeset.ops)))
            sharded_apply_s = time.perf_counter() - started
            identical = (
                _full_state(reference_out.repaired)
                == _full_state(sharded_out.repaired)
                and _fingerprint(reference_out.fix_log)
                == _fingerprint(sharded_out.fix_log)
                and abs(reference_out.cost - sharded_out.cost) < 1e-9
                and reference_out.clean == sharded_out.clean
            )
            all_identical &= identical
            rows.append(
                {
                    "stage": f"apply[{batch}]",
                    "unsharded_s": round(unsharded_apply_s, 6),
                    "sharded_s": round(sharded_apply_s, 6),
                    "speedup": round(unsharded_apply_s / sharded_apply_s, 2)
                    if sharded_apply_s
                    else None,
                    "mode": "full_reclean" if sharded_out.full_reclean else "scoped",
                    "state_identical": identical,
                }
            )
        summary = {
            "size": size,
            "n_blocks": n_blocks,
            "n_workers": n_workers,
            "cpu_count": os.cpu_count(),
            "n_shards": sharded.plan.n_shards,
            "degenerate_plan": sharded.plan.degenerate,
            "collision_retries": sharded.stats["collision_retries"],
            "scoped_applies": sharded.stats["scoped_applies"],
            "unsharded_clean_s": round(unsharded_s, 6),
            "sharded_clean_s": round(sharded_s, 6),
            "clean_speedup": round(unsharded_s / sharded_s, 2) if sharded_s else None,
            "all_state_identical": all_identical,
        }
    finally:
        sharded.close()
    return {
        "workload": {
            "dataset": "partitioned",
            "size": size,
            "n_blocks": n_blocks,
            "noise_rate": noise_rate,
            "seed": seed,
        },
        "rows": rows,
        "summary": summary,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument("--dataset", default="hosp")
    parser.add_argument("--noise-rate", type=float, default=0.06)
    parser.add_argument("--batches", type=int, default=5,
                        help="micro-batches for the incremental scenario")
    parser.add_argument("--edits-per-batch", type=int, default=10)
    parser.add_argument("--skip-incremental", action="store_true")
    parser.add_argument("--sharded-size", type=int, default=4000,
                        help="PART testbed rows for the sharded scenario")
    parser.add_argument("--sharded-blocks", type=int, default=16)
    parser.add_argument("--sharded-workers", type=int, default=2)
    parser.add_argument("--skip-sharded", action="store_true")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_repair.json",
    )
    args = parser.parse_args(argv)

    report = run_report(args.sizes, dataset=args.dataset, noise_rate=args.noise_rate)
    ok = True
    for entry in report["summary"]:
        print(
            f"  size={entry['size']}: indexed={entry['indexed_s']:.2f}s "
            f"legacy={entry['legacy_s']:.2f}s speedup={entry['speedup']}x "
            f"identical_logs={entry['fix_logs_identical']}"
        )
        ok &= entry["fix_logs_identical"]

    if not args.skip_incremental:
        incremental = run_incremental_report(
            max(args.sizes),
            batches=args.batches,
            edits_per_batch=args.edits_per_batch,
            dataset=args.dataset,
            noise_rate=args.noise_rate,
        )
        report["incremental"] = incremental
        for entry in incremental["summary"]:
            print(
                f"  incremental[{entry['scenario']}] size={entry['size']}: "
                f"apply={entry['apply_total_s']:.2f}s "
                f"full={entry['full_total_s']:.2f}s "
                f"speedup={entry['speedup']}x "
                f"scoped={entry['scoped_batches']}/{entry['batches']} "
                f"state_identical={entry['all_state_identical']}"
            )
            ok &= entry["all_state_identical"]

    if not args.skip_sharded:
        sharded = run_sharded_report(
            size=args.sharded_size,
            n_blocks=args.sharded_blocks,
            n_workers=args.sharded_workers,
        )
        report["sharded"] = sharded
        entry = sharded["summary"]
        print(
            f"  sharded size={entry['size']} shards={entry['n_shards']} "
            f"workers={entry['n_workers']}: "
            f"unsharded={entry['unsharded_clean_s']:.2f}s "
            f"sharded={entry['sharded_clean_s']:.2f}s "
            f"speedup={entry['clean_speedup']}x (cpus={entry['cpu_count']}) "
            f"scoped_applies={entry['scoped_applies']} "
            f"state_identical={entry['all_state_identical']}"
        )
        ok &= entry["all_state_identical"]

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not ok:
        print(
            "ERROR: engines diverged (fix logs or incremental state); "
            "timings are never asserted on",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
