"""Repair-pipeline performance report: the perf trajectory across PRs.

Runs the Exp-5 scalability workload (HOSP) at three sizes with the
indexed rule engine and with the legacy full-rescan baseline
(``use_violation_index=False``), then writes ``BENCH_repair.json`` — a
list of rows ``{size, phase, seconds, fixes, engine}`` plus a summary
with per-size speedups — so future PRs have a number to compare against.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf_report.py
    PYTHONPATH=src python benchmarks/perf_report.py --sizes 240 480 960

The script also asserts that both engines produce identical fix logs
(the determinism guarantee of the violation index) and exits non-zero if
they diverge.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, List

from repro.core import UniCleanConfig
from repro.evaluation import generate, run_uniclean

DEFAULT_SIZES = (240, 480, 960)
PHASES = ("crepair", "erepair", "hrepair")


def _fingerprint(log) -> List[tuple]:
    return [
        (f.kind.value, f.rule_name, f.tid, f.attr, repr(f.old_value),
         repr(f.new_value), repr(f.source))
        for f in log
    ]


def run_report(
    sizes=DEFAULT_SIZES,
    dataset: str = "hosp",
    noise_rate: float = 0.06,
    seed: int = 7,
) -> Dict[str, Any]:
    """Run the workload at each size with both engines; return the report."""
    rows: List[Dict[str, Any]] = []
    summary: List[Dict[str, Any]] = []
    for size in sizes:
        ds = generate(
            dataset, size=size, master_size=max(size // 2, 1),
            noise_rate=noise_rate, seed=seed,
        )
        results = {}
        for engine, flag in (("indexed", True), ("legacy", False)):
            result = run_uniclean(
                ds, UniCleanConfig(eta=1.0, use_violation_index=flag)
            )
            results[engine] = result
            phase_fixes = {
                "crepair": result.crepair_result.deterministic_fixes,
                "erepair": result.erepair_result.reliable_fixes,
                "hrepair": result.hrepair_result.possible_fixes,
            }
            for phase in PHASES:
                rows.append(
                    {
                        "size": size,
                        "phase": phase,
                        "seconds": round(result.timings.get(phase, 0.0), 6),
                        "fixes": phase_fixes[phase],
                        "engine": engine,
                    }
                )
        identical = _fingerprint(results["indexed"].fix_log) == _fingerprint(
            results["legacy"].fix_log
        )
        t_indexed = results["indexed"].total_time
        t_legacy = results["legacy"].total_time
        summary.append(
            {
                "size": size,
                "indexed_s": round(t_indexed, 6),
                "legacy_s": round(t_legacy, 6),
                "speedup": round(t_legacy / t_indexed, 2) if t_indexed > 0 else None,
                "fix_logs_identical": identical,
                "clean": results["indexed"].clean,
            }
        )
    return {
        "workload": {"dataset": dataset, "noise_rate": noise_rate, "seed": seed},
        "rows": rows,
        "summary": summary,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument("--dataset", default="hosp")
    parser.add_argument("--noise-rate", type=float, default=0.06)
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_repair.json",
    )
    args = parser.parse_args(argv)

    report = run_report(args.sizes, dataset=args.dataset, noise_rate=args.noise_rate)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    ok = True
    for entry in report["summary"]:
        print(
            f"  size={entry['size']}: indexed={entry['indexed_s']:.2f}s "
            f"legacy={entry['legacy_s']:.2f}s speedup={entry['speedup']}x "
            f"identical_logs={entry['fix_logs_identical']}"
        )
        ok &= entry["fix_logs_identical"]
    if not ok:
        print("ERROR: indexed and legacy engines produced different fix logs",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
