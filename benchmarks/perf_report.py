"""Repair-pipeline performance report: the perf trajectory across PRs.

Two workloads, both written to ``BENCH_repair.json``:

1. **Batch** (Exp-5 scalability, HOSP): the full pipeline at three sizes
   with the indexed rule engine and with the legacy full-rescan baseline
   (``use_violation_index=False``) — rows ``{size, phase, seconds,
   fixes, engine}`` plus per-size speedups.  The script asserts that
   both engines produce identical fix logs (the determinism guarantee of
   the violation index).
2. **Incremental** (the ``CleaningSession`` delta path): one initial
   ``clean()`` at the largest size, then N micro-batches of k cell
   edits applied via ``session.apply()``, each compared against a cold
   from-scratch ``UniClean.clean()`` of the edited base — rows
   ``{batch, scenario, apply_s, full_s, speedup, mode, affected,
   state_identical}``.  Two edit scenarios run: ``catalog`` (corrections
   to pure target attributes — the provably-local scoped replay) and
   ``mixed`` (uniformly random attributes — mostly the warm full-replay
   fallback).  The script asserts **state equivalence** for every batch;
   timing numbers are informational only, so CI stays robust to noisy
   runners.

Run from the repository root::

    PYTHONPATH=src python benchmarks/perf_report.py
    PYTHONPATH=src python benchmarks/perf_report.py --sizes 240 480 960
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Any, Dict, List

from repro.core import UniClean, UniCleanConfig
from repro.evaluation import generate, run_uniclean
from repro.pipeline import Changeset, CleaningSession

DEFAULT_SIZES = (240, 480, 960)
PHASES = ("crepair", "erepair", "hrepair")
#: HOSP attributes that are pure rule targets with stable group keys —
#: catalog-style corrections that the scoped replay covers.
CATALOG_ATTRS = ("measure_name", "condition")


def _fingerprint(log) -> List[tuple]:
    return [
        (f.kind.value, f.rule_name, f.tid, f.attr, repr(f.old_value),
         repr(f.new_value), repr(f.source))
        for f in log
    ]


def _state(relation) -> Dict[int, tuple]:
    names = relation.schema.names
    return {t.tid: tuple(repr(t[a]) for a in names) for t in relation}


def run_report(
    sizes=DEFAULT_SIZES,
    dataset: str = "hosp",
    noise_rate: float = 0.06,
    seed: int = 7,
) -> Dict[str, Any]:
    """Run the workload at each size with both engines; return the report."""
    rows: List[Dict[str, Any]] = []
    summary: List[Dict[str, Any]] = []
    for size in sizes:
        ds = generate(
            dataset, size=size, master_size=max(size // 2, 1),
            noise_rate=noise_rate, seed=seed,
        )
        results = {}
        for engine, flag in (("indexed", True), ("legacy", False)):
            result = run_uniclean(
                ds, UniCleanConfig(eta=1.0, use_violation_index=flag)
            )
            results[engine] = result
            phase_fixes = {
                "crepair": result.crepair_result.deterministic_fixes,
                "erepair": result.erepair_result.reliable_fixes,
                "hrepair": result.hrepair_result.possible_fixes,
            }
            for phase in PHASES:
                rows.append(
                    {
                        "size": size,
                        "phase": phase,
                        "seconds": round(result.timings.get(phase, 0.0), 6),
                        "fixes": phase_fixes[phase],
                        "engine": engine,
                    }
                )
        identical = _fingerprint(results["indexed"].fix_log) == _fingerprint(
            results["legacy"].fix_log
        )
        t_indexed = results["indexed"].total_time
        t_legacy = results["legacy"].total_time
        summary.append(
            {
                "size": size,
                "indexed_s": round(t_indexed, 6),
                "legacy_s": round(t_legacy, 6),
                "speedup": round(t_legacy / t_indexed, 2) if t_indexed > 0 else None,
                "fix_logs_identical": identical,
                "clean": results["indexed"].clean,
            }
        )
    return {
        "workload": {"dataset": dataset, "noise_rate": noise_rate, "seed": seed},
        "rows": rows,
        "summary": summary,
    }


def run_incremental_report(
    size: int,
    batches: int = 5,
    edits_per_batch: int = 10,
    dataset: str = "hosp",
    noise_rate: float = 0.06,
    seed: int = 7,
) -> Dict[str, Any]:
    """Clean once, then apply N micro-batches of k edits incrementally.

    Each batch is verified for state equivalence against a cold
    from-scratch clean of the edited base.
    """
    ds = generate(
        dataset, size=size, master_size=max(size // 2, 1),
        noise_rate=noise_rate, seed=seed,
    )
    config = UniCleanConfig(eta=1.0)
    rng = random.Random(seed)
    rows: List[Dict[str, Any]] = []
    scenarios = {
        "catalog": [a for a in CATALOG_ATTRS if a in ds.schema],
        "mixed": list(ds.schema.names),
    }
    summary: List[Dict[str, Any]] = []
    for scenario, attr_pool in scenarios.items():
        if not attr_pool:
            continue
        session = CleaningSession(
            cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config
        )
        started = time.perf_counter()
        initial = session.clean(ds.dirty)
        clean_s = time.perf_counter() - started
        tids = list(session.base.tids())
        apply_total = full_total = 0.0
        all_identical = True
        scoped_batches = 0
        for batch in range(batches):
            changeset = Changeset()
            for _ in range(edits_per_batch):
                attr = rng.choice(attr_pool)
                donor = session.base.by_tid(rng.choice(tids))
                changeset.edit(rng.choice(tids), attr, donor[attr])
            started = time.perf_counter()
            out = session.apply(changeset)
            apply_s = time.perf_counter() - started
            started = time.perf_counter()
            reference = UniClean(
                cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config
            ).clean(session.base)
            full_s = time.perf_counter() - started
            identical = _state(out.repaired) == _state(reference.repaired)
            all_identical &= identical
            scoped_batches += 0 if out.full_reclean else 1
            apply_total += apply_s
            full_total += full_s
            rows.append(
                {
                    "scenario": scenario,
                    "batch": batch,
                    "apply_s": round(apply_s, 6),
                    "full_s": round(full_s, 6),
                    "speedup": round(full_s / apply_s, 2) if apply_s > 0 else None,
                    "mode": "full_reclean" if out.full_reclean else "scoped",
                    "affected": out.affected,
                    "affected_cells": out.affected_cells,
                    "state_identical": identical,
                    "clean": out.clean,
                }
            )
        summary.append(
            {
                "scenario": scenario,
                "size": size,
                "batches": batches,
                "edits_per_batch": edits_per_batch,
                "initial_clean_s": round(clean_s, 6),
                "initial_clean": initial.clean,
                "apply_total_s": round(apply_total, 6),
                "full_total_s": round(full_total, 6),
                "speedup": round(full_total / apply_total, 2) if apply_total else None,
                "scoped_batches": scoped_batches,
                "all_state_identical": all_identical,
            }
        )
    return {
        "workload": {
            "dataset": dataset,
            "size": size,
            "noise_rate": noise_rate,
            "seed": seed,
        },
        "rows": rows,
        "summary": summary,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument("--dataset", default="hosp")
    parser.add_argument("--noise-rate", type=float, default=0.06)
    parser.add_argument("--batches", type=int, default=5,
                        help="micro-batches for the incremental scenario")
    parser.add_argument("--edits-per-batch", type=int, default=10)
    parser.add_argument("--skip-incremental", action="store_true")
    parser.add_argument(
        "--out", type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_repair.json",
    )
    args = parser.parse_args(argv)

    report = run_report(args.sizes, dataset=args.dataset, noise_rate=args.noise_rate)
    ok = True
    for entry in report["summary"]:
        print(
            f"  size={entry['size']}: indexed={entry['indexed_s']:.2f}s "
            f"legacy={entry['legacy_s']:.2f}s speedup={entry['speedup']}x "
            f"identical_logs={entry['fix_logs_identical']}"
        )
        ok &= entry["fix_logs_identical"]

    if not args.skip_incremental:
        incremental = run_incremental_report(
            max(args.sizes),
            batches=args.batches,
            edits_per_batch=args.edits_per_batch,
            dataset=args.dataset,
            noise_rate=args.noise_rate,
        )
        report["incremental"] = incremental
        for entry in incremental["summary"]:
            print(
                f"  incremental[{entry['scenario']}] size={entry['size']}: "
                f"apply={entry['apply_total_s']:.2f}s "
                f"full={entry['full_total_s']:.2f}s "
                f"speedup={entry['speedup']}x "
                f"scoped={entry['scoped_batches']}/{entry['batches']} "
                f"state_identical={entry['all_state_identical']}"
            )
            ok &= entry["all_state_identical"]

    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if not ok:
        print(
            "ERROR: engines diverged (fix logs or incremental state); "
            "timings are never asserted on",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
