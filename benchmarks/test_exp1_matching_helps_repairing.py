"""Exp-1 (Fig. 10a/b): matching helps repairing.

Paper: "Uni clearly outperforms Uni(CFD) and quaid by up to 15% and 30%
respectively ... The F-measure typically decreases when noi% increases
for all three approaches.  However, Uni with matching is less sensitive."

The benchmark regenerates the F-measure-vs-noise curves for HOSP and DBLP
and asserts the ordering Uni ≥ Uni(CFD) ≥ quaid (small tolerance), with a
strict win for Uni somewhere on the curve.
"""

import pytest

from repro.evaluation import exp1_matching_helps_repairing, format_table

from .conftest import MASTER, NOISE_RATES, SIZE


def _run(dataset: str):
    return exp1_matching_helps_repairing(
        dataset, noise_rates=NOISE_RATES, size=SIZE, master_size=MASTER
    )


@pytest.mark.parametrize("dataset", ["hosp", "dblp"])
def test_exp1_fig10(benchmark, dataset):
    rows = benchmark.pedantic(_run, args=(dataset,), rounds=1, iterations=1)
    print()
    print(format_table(rows, f"Exp-1 / Fig. 10 ({dataset}): repairing F-measure"))
    for row in rows:
        assert row["uni_f1"] >= row["uni_cfd_f1"] - 0.03, row
        assert row["uni_f1"] >= row["quaid_f1"] - 0.03, row
    # Matching must strictly help somewhere on the curve.
    assert any(r["uni_f1"] > r["uni_cfd_f1"] + 0.01 for r in rows)
    # F-measure does not collapse as noise grows (paper: Uni is the least
    # noise-sensitive system).
    assert rows[-1]["uni_f1"] >= 0.4
