"""Ablation: suffix-tree LCS blocking vs full master scans (Section 5.2).

Paper: "Without the suffix tree blocking, it scales much worse.  Indeed,
when |D| or |Dm| is 20K, it took more than 5 hours" (vs ~11 minutes with
blocking).  At our scale the effect is milliseconds-vs-seconds; the bench
asserts blocking does not lose quality and reports both runtimes.
"""

import time

import pytest

from repro.core import UniCleanConfig
from repro.datasets import generate_hosp
from repro.evaluation import repair_metrics, run_uniclean

SIZE, MASTER = 160, 300


@pytest.fixture(scope="module")
def dataset():
    # A similarity-heavy workload: large master, similarity-only MDs get
    # exercised through the hosp geo/identity rules.
    return generate_hosp(size=SIZE, master_size=MASTER, noise_rate=0.06)


def test_blocking_quality_preserved(benchmark, dataset):
    """Blocking must not change what gets fixed (same F-measure ballpark)."""

    def run_both():
        with_blocking = run_uniclean(
            dataset, UniCleanConfig(eta=1.0, use_suffix_tree=True)
        )
        without = run_uniclean(
            dataset, UniCleanConfig(eta=1.0, use_suffix_tree=False)
        )
        return with_blocking, without

    with_blocking, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    m_with = repair_metrics(dataset.dirty, with_blocking.repaired, dataset.clean)
    m_without = repair_metrics(dataset.dirty, without.repaired, dataset.clean)
    print()
    print(f"with blocking:    {m_with}   time={with_blocking.total_time:.3f}s")
    print(f"without blocking: {m_without}   time={without.total_time:.3f}s")
    assert abs(m_with.f1 - m_without.f1) <= 0.05


def test_blocking_speed(benchmark, dataset):
    """Time one blocked pipeline run (the fast configuration)."""
    result = benchmark.pedantic(
        run_uniclean,
        args=(dataset, UniCleanConfig(eta=1.0, use_suffix_tree=True)),
        rounds=1,
        iterations=1,
    )
    assert result.clean
