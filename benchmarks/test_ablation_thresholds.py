"""Ablation: the δ2 (entropy) threshold trades precision for recall.

The paper fixes δ2 = 0.8; this ablation sweeps it and shows the expected
monotone trade-off of the reliable-fix phase: a permissive threshold
resolves more (and sloppier) conflict groups.
"""

import pytest

from repro.core import FixKind, UniCleanConfig
from repro.datasets import generate_hosp
from repro.evaluation import run_uniclean

DELTAS = (0.3, 0.6, 0.9)


def _run_sweep():
    ds = generate_hosp(size=240, master_size=120, noise_rate=0.08)
    rows = []
    for delta2 in DELTAS:
        result = run_uniclean(
            ds, UniCleanConfig(eta=1.0, delta2=delta2, run_hrepair=False)
        )
        cells = result.fix_log.marked_cells(FixKind.RELIABLE)
        correct = sum(
            1
            for tid, attr in cells
            if result.repaired.by_tid(tid)[attr] == ds.clean.by_tid(tid)[attr]
        )
        rows.append(
            {
                "delta2": delta2,
                "reliable_cells": len(cells),
                "reliable_precision": correct / len(cells) if cells else 1.0,
            }
        )
    return rows


def test_delta2_sweep(benchmark):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    print()
    for row in rows:
        print(
            f"  delta2={row['delta2']:.1f}: {row['reliable_cells']:4d} reliable "
            f"cells, precision {row['reliable_precision']:.3f}"
        )
    counts = [row["reliable_cells"] for row in rows]
    # More permissive threshold → at least as many reliable fixes.
    assert counts == sorted(counts)
    # Entropy filtering keeps reliable fixes reasonably accurate at every
    # setting (most misfires come from the unconditional constant-CFD/MD
    # resolutions, which δ2 does not gate).
    assert all(row["reliable_precision"] >= 0.7 for row in rows if row["reliable_cells"])
