"""Benchmark suite regenerating the paper's Section 8 experiments.

This file makes ``benchmarks`` a package so that the relative imports of
the test modules (``from .conftest import ...``) resolve when pytest
collects from the repository root (tier-1: ``python -m pytest -x -q``).
"""
