"""Exp-5 (Fig. 14a–h): scalability with |D|, |Dm|, |Σ| and |Γ|.

Paper: "Uni scales reasonably well with |D| and |Dm| ... Uni scales well
with both |Σ| and |Γ|."  The paper's figures plot cRepair, cRepair+eRepair
and the full pipeline; so do these rows.  pytest-benchmark times one full
pipeline run per dataset; the printed sweeps carry the per-phase numbers.
"""

import pytest

from repro.core import UniCleanConfig
from repro.evaluation import exp5_scalability, format_table, generate, run_uniclean

from .conftest import MASTER, SIZE

D_VALUES = (80, 160, 240)
DM_VALUES = (60, 120, 180)
SIGMA_VALUES = (15, 35, 55)
GAMMA_VALUES = (2, 6, 10)


def _assert_no_blowup(rows, factor=40.0):
    """Runtime growth should stay in the same order as input growth —
    far below quadratic blow-up at these scales."""
    lo, hi = rows[0]["total_s"], rows[-1]["total_s"]
    assert hi <= max(lo, 1e-3) * factor, rows


@pytest.mark.parametrize("dataset", ["hosp", "dblp", "tpch"])
def test_exp5_vary_d(benchmark, dataset):
    """Figs. 14a/14c/14e: runtime vs |D|."""
    rows = benchmark.pedantic(
        exp5_scalability,
        args=(dataset,),
        kwargs=dict(vary="D", values=D_VALUES, master_size=MASTER),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, f"Exp-5 / Fig. 14 ({dataset}): time vs |D|"))
    _assert_no_blowup(rows)


@pytest.mark.parametrize("dataset", ["hosp", "dblp", "tpch"])
def test_exp5_vary_dm(benchmark, dataset):
    """Figs. 14b/14d/14f: runtime vs |Dm|."""
    rows = benchmark.pedantic(
        exp5_scalability,
        args=(dataset,),
        kwargs=dict(vary="Dm", values=DM_VALUES, size=SIZE),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, f"Exp-5 / Fig. 14 ({dataset}): time vs |Dm|"))
    _assert_no_blowup(rows)


def test_exp5_vary_sigma(benchmark):
    """Fig. 14g: runtime vs |Σ| on TPC-H."""
    rows = benchmark.pedantic(
        exp5_scalability,
        args=("tpch",),
        kwargs=dict(vary="Sigma", values=SIGMA_VALUES, size=SIZE, master_size=MASTER),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, "Exp-5 / Fig. 14g (tpch): time vs |Sigma|"))
    _assert_no_blowup(rows)


def test_exp5_vary_gamma(benchmark):
    """Fig. 14h: runtime vs |Γ| on TPC-H."""
    rows = benchmark.pedantic(
        exp5_scalability,
        args=("tpch",),
        kwargs=dict(vary="Gamma", values=GAMMA_VALUES, size=SIZE, master_size=MASTER),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(rows, "Exp-5 / Fig. 14h (tpch): time vs |Gamma|"))
    _assert_no_blowup(rows)


def test_exp5_single_run_timing(benchmark):
    """A directly benchmarked single pipeline run (HOSP default size) —
    the headline number pytest-benchmark reports for regressions."""
    ds = generate("hosp", size=SIZE, master_size=MASTER, noise_rate=0.06)
    result = benchmark(run_uniclean, ds, UniCleanConfig(eta=1.0))
    assert result.clean
