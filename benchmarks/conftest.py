"""Shared benchmark configuration.

Every benchmark regenerates one table/figure of the paper's Section 8 and
prints the corresponding rows (run pytest with ``-s`` to see them; they
are also asserted structurally).  Sizes are scaled to laptop-Python from
the paper's 100K-row testbed; the *shape* of each result — who wins, by
roughly what factor, how curves move with each knob — is what is checked.
"""

import pytest

#: Scaled-down workload sizes (the paper uses 100K/400K rows; pure-Python
#: benchmarks use hundreds so the full suite stays in minutes).
SIZE = 240
MASTER = 120
NOISE_RATES = (0.02, 0.06, 0.10)


@pytest.fixture(scope="session")
def workload():
    """The common knobs, as one dict for the experiment functions."""
    return dict(size=SIZE, master_size=MASTER)
