"""Legacy setup shim.

The reproduction environment has no network access and no ``wheel``
package, so PEP 660 editable installs (which build a wheel) fail.  With a
``setup.py`` present and no ``[build-system]`` table in ``pyproject.toml``,
``pip install -e .`` falls back to the classic ``setup.py develop`` code
path, which works offline.
"""

from setuptools import setup

setup()
