"""Quickstart: the paper's running example (Fig. 1 / Example 1.1).

A UK bank holds clean master data about its card holders and a dirty
transaction log.  Individually, record matching and data repairing are
stuck: no rule identifies the suspicious transactions t3 (UK) and t4 (USA)
directly.  UniClean interleaves the two and exposes the fraud.

Run:  python examples/quickstart.py
"""

from repro import NULL, Relation, Schema, parse_rules
from repro.core import UniClean, UniCleanConfig

# ----------------------------------------------------------------------
# Schemas (Fig. 1): master `card` data and transaction `tran` records.
# ----------------------------------------------------------------------
tran = Schema("tran", ["FN", "LN", "St", "city", "AC", "post", "phn", "gd"])
card = Schema("card", ["FN", "LN", "St", "city", "AC", "zip", "tel", "dob", "gd"])

master = Relation.from_dicts(
    card,
    [
        dict(FN="Mark", LN="Smith", St="10 Oak St", city="Edi", AC="131",
             zip="EH8 9LE", tel="3256778", dob="10/10/1987", gd="Male"),
        dict(FN="Robert", LN="Brady", St="5 Wren St", city="Ldn", AC="020",
             zip="WC1H 9SE", tel="3887644", dob="12/08/1975", gd="Male"),
    ],
)

rows = [
    dict(FN="M.", LN="Smith", St="10 Oak St", city="Ldn", AC="131",
         post="EH8 9LE", phn="9999999", gd="Male"),
    dict(FN="Max", LN="Smith", St="Po Box 25", city="Edi", AC="131",
         post="EH8 9AB", phn="3256778", gd="Male"),
    dict(FN="Bob", LN="Brady", St="5 Wren St", city="Edi", AC="020",
         post="WC1H 9SE", phn="3887834", gd="Male"),
    dict(FN="Robert", LN="Brady", St=NULL, city="Ldn", AC="020",
         post="WC1E 7HX", phn="3887644", gd="Male"),
]
confidences = [
    dict(FN=0.9, LN=1.0, St=0.9, city=0.5, AC=0.9, post=0.9, phn=0.0, gd=0.8),
    dict(FN=0.7, LN=1.0, St=0.5, city=0.9, AC=0.7, post=0.6, phn=0.8, gd=0.8),
    dict(FN=0.6, LN=1.0, St=0.9, city=0.2, AC=0.9, post=0.8, phn=0.9, gd=0.8),
    dict(FN=0.7, LN=1.0, St=0.0, city=0.5, AC=0.7, post=0.3, phn=0.7, gd=0.8),
]
dirty = Relation.from_dicts(tran, rows, confidences)

# ----------------------------------------------------------------------
# Data quality rules (Example 1.1): CFDs φ1–φ4, MD ψ and the negative
# gender rule (Example 2.4), written in the textual rule syntax.
# ----------------------------------------------------------------------
rules = parse_rules(
    """
    cfd tran: AC='131' -> city='Edi'                                  @phi1
    cfd tran: AC='020' -> city='Ldn'                                  @phi2
    cfd tran: city, phn -> St, AC, post                               @phi3
    cfd tran: FN='Bob' -> FN='Robert'                                 @phi4
    md tran~card: LN=LN, city=city, St=St, post=zip, FN ~edit<=3 FN -> FN=FN, phn=tel  @psi
    nmd tran~card: gd!=gd -> FN=FN, phn=tel                           @psi_neg
    """,
    {"tran": tran, "card": card},
)

# ----------------------------------------------------------------------
# Clean.
# ----------------------------------------------------------------------
cleaner = UniClean(
    cfds=rules.cfds,
    mds=rules.mds,
    negative_mds=rules.negative_mds,
    master=master,
    config=UniCleanConfig(eta=0.8),
)
result = cleaner.clean(dirty)

print("=== Dirty transactions (Fig. 1b) ===")
print(dirty.to_text())
print()
print("=== Repaired transactions ===")
print(result.repaired.to_text())
print()
print("=== Fixes, by accuracy class ===")
for fix in result.fix_log:
    print(
        f"  [{fix.kind.value:>13}] t{fix.tid + 1}.{fix.attr}: "
        f"{fix.old_value!r} -> {fix.new_value!r}   via {fix.rule_name}"
    )
print()
print(result.summary())

# ----------------------------------------------------------------------
# The fraud: t3 and t4 now agree on all personal attributes, yet record
# purchases in the UK and the USA at about the same time.
# ----------------------------------------------------------------------
t3 = result.repaired.by_tid(2)
t4 = result.repaired.by_tid(3)
personal = ["FN", "LN", "St", "city", "AC", "post", "phn", "gd"]
agree = all(t3[a] == t4[a] for a in personal)
print()
print(f"t3 and t4 refer to the same person: {agree}")
if agree:
    print("  -> the same card paid in the UK and in the USA at about the")
    print("     same time: a fraud has likely been committed (Example 1.1).")
