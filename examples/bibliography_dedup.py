"""Repairing helps matching: deduplicating a DBLP-style bibliography.

The Exp-2 story: matching dirty publication records against a clean master
bibliography with MDs alone misses duplicates whose premise attributes are
corrupted.  Running UniClean first repairs those attributes, and the same
MD premises then find the matches — "repairing helps matching".

Run:  python examples/bibliography_dedup.py
"""

from repro.core import UniCleanConfig
from repro.datasets import generate_dblp
from repro.evaluation import matching_metrics, run_uniclean
from repro.matching import MDMatcher, SortedNeighborhood

dataset = generate_dblp(
    size=300,
    master_size=150,
    noise_rate=0.08,
    duplicate_rate=0.5,
    asserted_rate=0.4,
    seed=11,
)

print(f"dataset: {len(dataset.dirty)} records, {len(dataset.master)} master "
      f"publications, {len(dataset.true_matches)} true matches")

matcher = MDMatcher(dataset.mds, dataset.master)

# 1. Match the dirty data directly (no repairing).
dirty_matches = matcher.match(dataset.dirty)
dirty_quality = matching_metrics(dirty_matches.pairs, dataset.true_matches)

# 2. The classic sorted-neighborhood baseline on the dirty data.
sortn = SortedNeighborhood(dataset.mds, dataset.master, window=10)
sortn_matches = sortn.match(dataset.dirty)
sortn_quality = matching_metrics(sortn_matches.pairs, dataset.true_matches)

# 3. UniClean: repair first, then match with the same MDs.
result = run_uniclean(dataset, UniCleanConfig(eta=1.0))
uni_matches = matcher.match(result.repaired)
uni_quality = matching_metrics(uni_matches.pairs, dataset.true_matches)

print()
print("=== Match quality (precision / recall / F-measure) ===")
print(f"MDs on dirty data:      {dirty_quality}")
print(f"SortN(MD) baseline:     {sortn_quality}")
print(f"UniClean (repair+match): {uni_quality}")

recovered = uni_matches.pairs - dirty_matches.pairs
print()
print(f"matches recovered by repairing: {len(recovered & dataset.true_matches)}")
for tid, sid in sorted(recovered & dataset.true_matches)[:5]:
    dirty_title = dataset.dirty.by_tid(tid)["title"]
    master_title = dataset.master.by_tid(sid)["title"]
    print(f"  t{tid} {dirty_title!r}")
    print(f"     == s{sid} {master_title!r}")
