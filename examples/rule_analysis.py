"""Static analyses of data quality rules (Section 4).

Shows the three analyses the paper studies before any cleaning happens:

* consistency of Σ ∪ Γ (NP-complete; exact small-model search),
* implication / redundant-rule detection (coNP-complete),
* termination and determinism of rule-based cleaning (PSPACE-complete;
  exact bounded state-graph exploration), including the non-terminating
  φ1/φ5 ping-pong of Example 4.6.

Run:  python examples/rule_analysis.py
"""

from repro import CFD, Relation, Schema
from repro.analysis import (
    explore,
    find_witness,
    implies,
    is_consistent,
    order_rules,
    redundant_rules,
)
from repro.constraints import derive_rules

schema = Schema("tran", ["AC", "post", "city", "St"])

# ----------------------------------------------------------------------
# 1. Consistency (Theorem 4.1).
# ----------------------------------------------------------------------
good = [
    CFD(schema, ["AC"], ["city"], {"AC": "131", "city": "Edi"}, name="phi1"),
    CFD(schema, ["AC"], ["city"], {"AC": "020", "city": "Ldn"}, name="phi2"),
]
print("φ1, φ2 consistent:", is_consistent(schema, good))
witness = find_witness(schema, good)
print("  witness tuple:", witness.as_dict())

bad = [
    CFD(schema, [], ["city"], rhs_pattern={"city": "Edi"}, name="always_edi"),
    CFD(schema, [], ["city"], rhs_pattern={"city": "Ldn"}, name="always_ldn"),
]
print("∅→city=Edi plus ∅→city=Ldn consistent:", is_consistent(schema, bad))

# ----------------------------------------------------------------------
# 2. Implication (Theorem 4.2): FD transitivity, and redundancy pruning.
# ----------------------------------------------------------------------
fds = [
    CFD(schema, ["AC"], ["city"], name="ac_city"),
    CFD(schema, ["city"], ["post"], name="city_post"),
    CFD(schema, ["AC"], ["post"], name="ac_post"),  # implied by the others
]
print()
print("AC→city, city→post ⊨ AC→post:", implies(schema, fds[:2], [], fds[2]))
print("redundant rules:", [r.name for r in redundant_rules(schema, fds)])

# ----------------------------------------------------------------------
# 3. Termination / determinism (Theorems 4.7/4.8, Example 4.6).
# ----------------------------------------------------------------------
phi1 = CFD(schema, ["AC"], ["city"], {"AC": "131", "city": "Edi"}, name="phi1")
phi5 = CFD(schema, ["post"], ["city"], {"post": "EH8 9AB", "city": "Ldn"}, name="phi5")
t2 = Relation.from_dicts(
    schema, [{"AC": "131", "post": "EH8 9AB", "city": "Edi", "St": "s"}]
)
result = explore(t2, derive_rules([phi1, phi5]))
print()
print("Example 4.6 (φ1/φ5 ping-pong on t2):")
print(f"  terminates: {result.terminates}   deterministic: {result.deterministic}")
print(f"  states explored: {result.states_explored}")

safe = explore(t2, derive_rules([phi1]))
print("With φ1 alone:")
print(f"  terminates: {safe.terminates}   deterministic: {safe.deterministic}")
print(f"  fixpoint city: {safe.fixpoints[0][0][schema.index_of('city')]}")

# ----------------------------------------------------------------------
# 4. The eRepair rule order (Section 6.2).
# ----------------------------------------------------------------------
rules = derive_rules([phi1, phi5, CFD(schema, ["city", "post"], ["St"], name="phi3")])
print()
print("eRepair dependency-graph order:", [r.name for r in order_rules(rules)])
