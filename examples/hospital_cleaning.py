"""Cleaning a HOSP-style hospital quality feed (the paper's Exp workload).

Generates a synthetic hospital dataset (19 attributes, 23 CFDs + 3 MDs —
the same rule structure as the paper's US HHS data), dirties it under the
paper's noise model, cleans it with the full UniClean pipeline, and scores
the repair against ground truth.

Run:  python examples/hospital_cleaning.py
"""

from repro.core import FixKind, UniCleanConfig
from repro.datasets import generate_hosp
from repro.evaluation import repair_metrics, run_uniclean

# One knob per paper parameter: |D|, |Dm|, noi%, dup%, asr%.
dataset = generate_hosp(
    size=300,
    master_size=150,
    noise_rate=0.06,
    duplicate_rate=0.4,
    asserted_rate=0.4,
    seed=7,
)

print(f"dataset: {len(dataset.dirty)} dirty tuples, "
      f"{len(dataset.master)} master tuples, "
      f"{len(dataset.cfds)} CFDs, {len(dataset.mds)} MDs, "
      f"{len(dataset.errors)} injected errors")

result = run_uniclean(dataset, UniCleanConfig(eta=1.0, delta2=0.8))

print()
print("=== Repair quality (Section 8 metrics) ===")
overall = repair_metrics(dataset.dirty, result.repaired, dataset.clean)
print(f"overall:        {overall}")

for kind in FixKind:
    cells = result.fix_log.marked_cells(kind)
    if not cells:
        print(f"{kind.value:>13}: no fixes")
        continue
    correct = sum(
        1
        for tid, attr in cells
        if result.repaired.by_tid(tid)[attr] == dataset.clean.by_tid(tid)[attr]
    )
    print(
        f"{kind.value:>13}: {len(cells):4d} cells, "
        f"{100.0 * correct / len(cells):5.1f}% correct"
    )

print()
print("=== Run profile ===")
print(result.summary())
print(f"consistent repair: {result.clean}")

print()
print("=== Sample fixes ===")
for fix in list(result.fix_log)[:10]:
    truth = dataset.clean.by_tid(fix.tid)[fix.attr]
    verdict = "correct" if fix.new_value == truth else f"wrong (truth {truth!r})"
    print(
        f"  [{fix.kind.value:>13}] t{fix.tid}.{fix.attr}: "
        f"{fix.old_value!r} -> {fix.new_value!r}  ({verdict})"
    )
