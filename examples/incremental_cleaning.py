"""Incremental cleaning: a session over evolving hospital data.

The one-shot pipeline pays the full build cost on every ``clean()``.
A :class:`~repro.pipeline.CleaningSession` binds rules and master data
once, keeps every shared structure alive (master-side blocking indexes,
the MD match cache, the LHS-keyed group stores), and re-cleans under
micro-batches of edits with :meth:`apply` — exactly matching a
from-scratch clean of the edited data, at a fraction of the cost.

Run:  PYTHONPATH=src python examples/incremental_cleaning.py
"""

import random
import time

from repro.core import UniClean, UniCleanConfig
from repro.datasets.hosp import generate_hosp
from repro.pipeline import Changeset, CleaningSession

# A HOSP benchmark instance: dirty data + master records + rules.
ds = generate_hosp(size=480, master_size=240, noise_rate=0.06, seed=7)
config = UniCleanConfig(eta=1.0)

session = CleaningSession(cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config)

started = time.perf_counter()
initial = session.clean(ds.dirty)
print(f"initial clean:   {initial.summary()}")
print(f"                 wall {time.perf_counter() - started:.3f}s")

# A stream of micro-batches: catalog corrections to measure fields.
rng = random.Random(42)
tids = list(session.base.tids())
for batch in range(3):
    delta = Changeset()
    for _ in range(10):
        attr = rng.choice(["measure_name", "condition"])
        donor = session.base.by_tid(rng.choice(tids))
        delta.edit(rng.choice(tids), attr, donor[attr])

    started = time.perf_counter()
    out = session.apply(delta)
    apply_s = time.perf_counter() - started

    # The gold standard: a cold, from-scratch clean of the edited base.
    started = time.perf_counter()
    reference = UniClean(
        cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config
    ).clean(session.base)
    full_s = time.perf_counter() - started

    identical = all(
        out.repaired.by_tid(t.tid)[a] == t[a]
        for t in reference.repaired
        for a in reference.repaired.schema.names
    )
    mode = "full re-clean" if out.full_reclean else "scoped replay"
    print(
        f"batch {batch}: {mode}, affected {out.affected} tuples / "
        f"{out.affected_cells} cells; apply {apply_s:.3f}s vs "
        f"from-scratch {full_s:.3f}s ({full_s / apply_s:.1f}x); "
        f"state identical: {identical}"
    )

print(f"final state satisfies the rules: {session.is_clean()}")
print(
    "tip: on block-partitioned workloads, ShardedCleaningSession(..., "
    "n_workers=N) fans clean()/apply() out across a process pool with "
    "byte-identical results — see examples/sharded_cleaning.py"
)
