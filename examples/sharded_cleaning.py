"""Partition-parallel cleaning with ``ShardedCleaningSession``.

The PART testbed carries a ``block`` attribute in every rule key (the
multi-tenant/regional shape sharding is built for), so the planner
co-partitions it into real shards.  The demo cleans the same dataset
unsharded and sharded, verifies the observable state — repaired
relation, costs, verdict, and the *full ordered fix log* — is
byte-identical, then applies a catalog-style changeset routed to its
shard.

``n_workers=1`` (the default) runs every shard serially in-process
through the identical worker code path — the debugging mode.  Raise
``n_workers`` (e.g. to ``os.cpu_count()``) on a multi-core machine to
fan shards out across a process pool; the observable state is the same
either way, which is exactly what the session property-tests promise.

Run with::

    PYTHONPATH=src python examples/sharded_cleaning.py
"""

import time

from repro.core import UniCleanConfig
from repro.datasets import generate_partitioned
from repro.pipeline import Changeset, CleaningSession, ShardedCleaningSession

N_WORKERS = 2  # try os.cpu_count() on a multi-core machine

ds = generate_partitioned(size=2000, n_blocks=16, seed=11)
config = UniCleanConfig(eta=1.0)

print(f"PART testbed: {len(ds.dirty)} rows, {len(ds.errors)} injected errors")

reference = CleaningSession(
    cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config
)
started = time.perf_counter()
unsharded = reference.clean(ds.dirty)
print(f"unsharded clean: {time.perf_counter() - started:.2f}s "
      f"({unsharded.fix_log.summary()})")

with ShardedCleaningSession(
    cfds=ds.cfds, mds=ds.mds, master=ds.master, config=config,
    n_workers=N_WORKERS,
) as session:
    started = time.perf_counter()
    sharded = session.clean(ds.dirty)
    plan = session.plan
    print(f"sharded clean:   {time.perf_counter() - started:.2f}s "
          f"({plan.n_shards} shards over {plan.n_components} components, "
          f"{N_WORKERS} workers)")

    def fingerprint(log):
        return [(f.kind.value, f.rule_name, f.tid, f.attr) for f in log]

    identical = (
        {t.tid: [t[a] for a in ds.schema.names] for t in unsharded.repaired}
        == {t.tid: [t[a] for a in ds.schema.names] for t in sharded.repaired}
        and fingerprint(unsharded.fix_log) == fingerprint(sharded.fix_log)
        and unsharded.clean == sharded.clean
    )
    print(f"observable state byte-identical: {identical}")

    # A catalog-style correction: routed to the owning shard, cleaned via
    # the scoped (delta-proportional) path — no other shard does any work.
    tid = list(session.base.tids())[0]
    out = session.apply(Changeset().edit(tid, "cat", "alpha"))
    mode = "full re-clean" if out.full_reclean else "scoped replay"
    print(f"apply(edit #{tid}.cat): {mode}, affected {out.affected} tuple(s); "
          f"still clean: {out.clean}")
    print(f"session stats: {session.stats}")
